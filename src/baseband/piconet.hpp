// Piconet data plane: master-side link manager and slave-side link.
//
// Includes PARK mode: a piconet has at most 7 *active* slaves (the AM_ADDR
// limit) but may hold many more parked ones. A parked slave keeps its clock
// synchronisation by listening to the master's beacon (modelled as the poll
// round) and stays tracked, but exchanges no data until unparked. Traffic
// to or from a parked slave unparks it automatically when an active slot is
// free; park_idlest() frees a slot by parking the active slave that has
// been quiet the longest. This is how a BIPS room serves more than seven
// enrolled users.
//
// Modelling boundary (documented in DESIGN.md): once a connection is
// established, master and slave hop a channel sequence derived from the
// master's clock, which makes intra-piconet traffic collision-free and
// cross-piconet interference rare. The paper's measurements concern the
// *inquiry/page* phases only, so the connection-state data plane is modelled
// at message granularity instead of slot granularity: the master polls its
// active slaves every poll interval and queued messages ride the next poll.
// Radio range still applies -- a slave that walks out of range trips the
// supervision timeout and both sides observe a link loss, which is how a
// BIPS workstation detects departures between inquiry rounds.
//
// Supervised quiesce (DESIGN.md section 5c): unless ChannelConfig::
// exact_slots is set, a master whose poll rounds are provable no-ops (all
// queues drained, and every slave's range-check outcome pinned by a speed
// bound over the park horizon) stops the poll timer and advances the
// supervision clock arithmetically -- it parks until the earliest instant
// at which a round could do observable work (a supervision deadline firing
// or a slave crossing the range boundary), and wakes early for traffic,
// membership changes, discrete position writes, or a pause. On wake the
// elided rounds are credited closed-form (stats_.polls, piconet.elided_polls,
// kernel.skipped_slots) and per-slave last_reachable is reconstructed to
// the last elided round, so every observable -- including the simulated
// instant of a supervision disconnect -- is byte-identical to the exact
// slot-by-slot path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/baseband/config.hpp"
#include "src/baseband/device.hpp"
#include "src/sim/virtual_clock.hpp"

namespace bips::baseband {

/// Opaque application payload carried over an ACL link.
using AclPayload = std::vector<std::uint8_t>;

class PiconetMaster;

/// Slave side of an ACL connection.
class SlaveLink {
 public:
  using MessageCallback = std::function<void(const AclPayload&)>;
  using DisconnectCallback = std::function<void()>;

  explicit SlaveLink(Device& dev) : dev_(dev) {}
  SlaveLink(const SlaveLink&) = delete;
  SlaveLink& operator=(const SlaveLink&) = delete;
  /// Leaves the master's roster quietly (no disconnect callback) so the
  /// master never reaches through a dangling link.
  ~SlaveLink();

  Device& device() { return dev_; }
  bool connected() const { return master_ != nullptr; }
  /// True while the link is in the park state (connected but inactive).
  bool parked() const;
  BdAddr master_addr() const;

  void set_on_message(MessageCallback cb) { on_message_ = std::move(cb); }
  void set_on_disconnected(DisconnectCallback cb) {
    on_disconnected_ = std::move(cb);
  }

  /// Queues a payload for the master; fragmented into DM5-sized pieces that
  /// ride the following polls. Returns false when not connected.
  bool send_to_master(AclPayload payload);

 private:
  friend class PiconetMaster;

  Device& dev_;
  PiconetMaster* master_ = nullptr;
  MessageCallback on_message_;
  DisconnectCallback on_disconnected_;
  std::uint16_t next_msg_id_ = 1;
  std::deque<AclPayload> tx_queue_;  // fragments, drained by the poll loop
};

/// Master side: owns up to 7 active slaves (AM_ADDR limit) and the poll loop.
class PiconetMaster {
 public:
  struct Config {
    int max_active_slaves = 7;
    /// Parked membership cap (spec: up to 255 PM_ADDRs).
    int max_parked_slaves = 255;
    /// One full poll round trip per slave per interval.
    Duration poll_interval = Duration::millis(25);
    /// A slave unreachable (out of range) this long is declared lost
    /// (applies to parked slaves too, via the beacon). Duration(0) disables
    /// supervision entirely; with supervision off the poll loop's only duty
    /// is moving queued traffic, so (unless ChannelConfig::exact_slots) a
    /// fully drained piconet quiesces indefinitely: the timer stops and the
    /// elided no-op rounds are credited closed-form when traffic resumes or
    /// stats are read. An enabled supervision timeout makes range checks
    /// genuine work, so the quiesce is bounded instead: the master parks
    /// only until the earliest round whose outcome the ff_max_speed_mps
    /// horizon cannot pin (see the header comment).
    Duration supervision_timeout = Duration::from_seconds(2.0);
    /// Upper bound on how fast any endpoint of this piconet can move
    /// (m/s); the supervised quiesce uses twice this value as the closing
    /// speed when proving future range-check outcomes. Must dominate the
    /// mobility model (RandomWaypointAgent caps at 1.5 m/s). Discrete
    /// set_position() writes are exempt -- they fire a wake instead. <= 0
    /// disables the supervised quiesce (the T == 0 quiesce is unaffected).
    double ff_max_speed_mps = 2.0;
    /// ACL payloads ride DM5-sized fragments (spec payload: 224 bytes)...
    std::size_t max_fragment_payload = 224;
    /// ...and each poll round moves at most this many fragments per slave
    /// per direction, so a large transfer takes several polls -- the slot
    /// budget a real master would spend on it.
    int fragments_per_poll = 4;
  };

  using MessageCallback =
      std::function<void(BdAddr from, const AclPayload& payload)>;
  using LinkLossCallback = std::function<void(BdAddr slave)>;

  // No default argument for cfg: a nested class's default member
  // initializers are only complete at the end of the enclosing class, so
  // `Config cfg = {}` would be ill-formed here. Pass Config{} explicitly.
  PiconetMaster(Device& dev, Config cfg);
  ~PiconetMaster();
  PiconetMaster(const PiconetMaster&) = delete;
  PiconetMaster& operator=(const PiconetMaster&) = delete;

  void set_on_message(MessageCallback cb) { on_message_ = std::move(cb); }
  void set_on_link_loss(LinkLossCallback cb) { on_link_loss_ = std::move(cb); }

  /// Admits a freshly paged slave. Returns false if the piconet is full or
  /// the slave is already attached.
  bool attach(SlaveLink& slave);
  /// Graceful detach (both sides notified; no link-loss event).
  void detach(BdAddr slave);

  /// Moves an active slave to the park state, freeing its AM_ADDR. False
  /// if unknown, already parked, or the parked set is full.
  bool park(BdAddr slave);
  /// Reactivates a parked slave. False if unknown, not parked, or no
  /// active slot is free.
  bool unpark(BdAddr slave);
  /// Parks the active slave that has exchanged no traffic for the longest
  /// time (never the one in `except`). Returns the parked address, or a
  /// null address if nobody was parkable.
  BdAddr park_idlest(BdAddr except = BdAddr());

  Device& device() { return dev_; }
  const Device& device() const { return dev_; }
  const Config& config() const { return cfg_; }

  bool has_slave(BdAddr a) const { return slaves_.count(a) != 0; }
  bool is_parked(BdAddr a) const;
  std::size_t slave_count() const { return slaves_.size(); }
  std::size_t active_count() const;
  std::size_t parked_count() const { return slave_count() - active_count(); }
  std::vector<BdAddr> slave_addrs() const;

  /// Queues a payload toward a slave; false if not attached.
  bool send(BdAddr to, AclPayload payload);

  /// Suspends the poll loop (the master is dedicating its radio to inquiry;
  /// queued traffic accumulates). resume() restarts it.
  void pause();
  void resume();
  bool paused() const { return paused_; }

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t messages_delivered = 0;   // complete reassembled messages
    std::uint64_t fragments_delivered = 0;  // DM5-sized pieces moved
    std::uint64_t link_losses = 0;
    std::uint64_t attach_rejected_full = 0;
    std::uint64_t parks = 0;
    std::uint64_t unparks = 0;
  };
  const Stats& stats() const {
    sync_poll_stat();  // fold in rounds elided by a quiescent fast-forward
    return stats_;
  }

 private:
  /// Reassembles a fragment stream back into messages. Fragments arrive
  /// reliably and in order (the link layer guarantees it), so this only
  /// validates sequencing.
  class Reassembler {
   public:
    /// Feeds one fragment; returns the completed message when the last
    /// fragment of a sequence arrives.
    std::optional<AclPayload> push(const AclPayload& fragment);

   private:
    std::uint16_t msg_id_ = 0;
    std::uint16_t next_index_ = 0;
    std::uint16_t total_ = 0;
    AclPayload buf_;
  };

  struct SlaveState {
    SlaveLink* link = nullptr;
    SimTime last_reachable;
    std::deque<AclPayload> tx_queue;  // master -> slave, fragments
    bool parked = false;
    SimTime last_activity;  // last data exchange (park-victim selection)
    std::uint16_t next_msg_id = 1;
    Reassembler from_slave;  // slave -> master reassembly
    Reassembler to_slave;    // master -> slave reassembly (lives here so a
                             // detach drops both directions atomically)
    // Supervised-quiesce state: whether the park's speed horizon proved
    // this slave in range for every elided round (drives last_reachable
    // reconstruction at settle), and the token of the position listener
    // registered on the slave's device.
    bool ff_in_range = false;
    int position_listener = -1;
  };

  friend class SlaveLink;  // ~SlaveLink erases itself from slaves_

  // Why a supervised quiesce ended (indices into deadlines_).
  enum WakeReason : std::size_t {
    kWakeSupervision = 0,  // scheduled: a supervision deadline is due
    kWakeRange = 1,        // scheduled: a range transition is possible
    kWakeTraffic = 2,      // send()/send_to_master() queued a fragment
    kWakeAttach = 3,       // a new slave joined (fresh supervision clock)
    kWakeDetach = 4,       // the roster emptied under the park
    kWakePosition = 5,     // a discrete position write (teleport)
    kWakePause = 6,        // pause() froze the loop
  };

  void poll_round();
  bool slave_in_range(const SlaveState& s) const;
  double range_m() const;
  /// Restarts a quiesced poll loop on the exact-path round lattice (first
  /// fire = the round the exact path would run next).
  void wake_polls(WakeReason reason = kWakeTraffic);
  /// Credits poll rounds the quiescent fast-forward has elided so far and
  /// advances the lattice anchor; no-op when not quiesced. Const (and the
  /// touched members mutable) so stats() reads are always exact-equivalent.
  void sync_poll_stat() const;
  /// Ends a quiesce without restarting the timer: folds in the elided
  /// rounds, reconstructs last_reachable for slaves the park proved in
  /// range, cancels the pending deadline wake and records the reason.
  void settle_quiesce(WakeReason reason);
  /// Parks the poll loop if every round until some future instant is a
  /// provable no-op; called at the end of a real round.
  void maybe_quiesce(SimTime now);
  /// Body of wake_proc_: the scheduled end of a supervised park.
  void deadline_wake();
  /// Position-listener body (master or any slave teleported).
  void on_position_write();

  Device& dev_;
  Config cfg_;
  MessageCallback on_message_;
  LinkLossCallback on_link_loss_;
  std::unordered_map<BdAddr, SlaveState> slaves_;
  sim::PeriodicTimer poll_timer_;
  bool paused_ = false;
  // Quiescent fast-forward state: quiesce_round_ anchors the round lattice
  // at the last (real or credited) round time.
  bool quiesced_ = false;
  mutable SimTime quiesce_round_;
  SimTime park_started_;  // first elided round of the current quiesce
  mutable Stats stats_;
  // Supervised-quiesce state: the scheduled deadline wake, the competing
  // end-of-park candidates with per-reason wake counters, the master's own
  // position-listener token, and the elision counters
  // (piconet.elided_polls + the simulator-wide kernel.skipped_slots).
  sim::Process wake_proc_;
  sim::DeadlineSet deadlines_;
  int position_listener_ = -1;
  obs::Counter* c_elided_polls_;
  obs::Counter* c_skipped_slots_;
  obs::Counter* c_quiesce_parks_;
  // Scratch membership snapshot reused across poll rounds (message
  // callbacks may attach/detach slaves mid-round).
  std::vector<BdAddr> poll_snapshot_;
};

}  // namespace bips::baseband
