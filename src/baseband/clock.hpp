// Bluetooth native clock (CLKN).
//
// Every device has a free-running 28-bit counter ticking once per 312.5 us
// (3.2 kHz). Devices power on at arbitrary instants, so each clock has a
// random phase relative to simulation time. Slot boundaries, train phases
// and scan phases are all functions of this clock, exactly as in the spec.
#pragma once

#include <cstdint>

#include "src/util/assert.hpp"
#include "src/util/time.hpp"

namespace bips::baseband {

class NativeClock {
 public:
  NativeClock() = default;
  /// `phase_ticks` is the CLKN value at simulation time zero (0..2^28-1).
  explicit NativeClock(std::uint32_t phase_ticks)
      : phase_(phase_ticks & kMask) {}

  /// CLKN value at simulated time t.
  std::uint32_t clkn(SimTime t) const {
    BIPS_ASSERT(t.ns() >= 0);
    const auto ticks = static_cast<std::uint64_t>(t.ns()) / kTickNs;
    return static_cast<std::uint32_t>((ticks + phase_) & kMask);
  }

  /// True when t falls in a master-to-slave (even) slot of this clock.
  /// A slot spans two ticks; CLKN bit 1 selects the slot parity.
  bool in_even_slot(SimTime t) const { return (clkn(t) & 0b10) == 0; }

  /// Start time of the next even-slot boundary at or after t (the instant
  /// where CLKN bits 1..0 wrap to 00).
  SimTime next_even_slot(SimTime t) const {
    const auto ticks = static_cast<std::uint64_t>(t.ns()) / kTickNs;
    std::uint64_t k = ticks + phase_;
    const std::uint64_t rem = k & 0b11;
    std::uint64_t target_ticks = ticks + ((4 - rem) & 0b11);
    // If t is not exactly on a tick boundary, the current tick is partially
    // consumed; land on the next aligned boundary strictly >= t.
    if (rem == 0 &&
        static_cast<std::uint64_t>(t.ns()) != ticks * kTickNs) {
      target_ticks = ticks + 4;
    }
    return SimTime(static_cast<std::int64_t>(target_ticks * kTickNs));
  }

  /// Phase used by scan-channel selection: CLKN16-12 advances once per
  /// 1.28 s (2^12 ticks).
  std::uint32_t scan_phase(SimTime t) const { return (clkn(t) >> 12) & 0x1F; }

  std::uint32_t phase_ticks() const { return phase_; }

 private:
  static constexpr std::uint64_t kTickNs = 312'500;  // one CLKN tick
  static constexpr std::uint32_t kMask = (1u << 28) - 1;
  std::uint32_t phase_ = 0;
};

}  // namespace bips::baseband
