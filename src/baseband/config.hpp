// Tunable parameters of the baseband model.
//
// Defaults are the Bluetooth 1.1 values the paper quotes; the ablation
// benches (A1, A2 in DESIGN.md) sweep them.
#pragma once

#include <cstdint>

#include "src/util/time.hpp"

namespace bips::baseband {

/// Which 16-hop train a procedure starts with.
enum class Train : std::uint8_t { kA = 0, kB = 1 };

/// How a scanning device picks its listening channel across scan windows.
enum class ScanChannelMode : std::uint8_t {
  /// One fixed channel for the whole run.
  kFixed,
  /// Rotates within the train of the initial channel: the relative train
  /// alignment with a master persists indefinitely. Use for short trials
  /// that classify by starting train (the Table 1 experiment).
  kStickyTrain,
  /// Steps through the full 32-channel sequence, one channel per window
  /// (CLKN16-12 behaviour): crosses the train boundary every 16 windows,
  /// so even a master that only ever sweeps train A eventually meets every
  /// scanner. This is the spec default and the library default.
  kSequence,
};

struct ScanConfig {
  /// T_w_inquiry_scan / T_w_page_scan: how long one listening window lasts.
  Duration window = kDefaultScanWindow;  // 11.25 ms
  /// T_inquiry_scan / T_page_scan: period between window starts. Setting
  /// interval == window yields continuous scanning (the Figure 2 scenario).
  Duration interval = kDefaultScanInterval;  // 1.28 s
  ScanChannelMode channel_mode = ScanChannelMode::kSequence;
  /// Interlaced scan (the Bluetooth 1.2 fix for the very discovery times
  /// the paper measures): each scan opens a *second* back-to-back window on
  /// the complementary train's channel, so the scanner is reachable no
  /// matter which train the master is sweeping -- at twice the window
  /// energy. Requires interval >= 2 * window.
  bool interlaced = false;
};

struct InquiryConfig {
  /// Repetitions of one train before switching (N_inquiry).
  int train_repetitions = kNInquiry;  // 256 -> 2.56 s per train
  /// If false the master stays on the starting train forever (the Figure 2
  /// simulation transmits "using only train A").
  bool switch_trains = true;
  Train starting_train = Train::kA;
};

struct PageConfig {
  /// Repetitions of one page train before switching (N_page).
  int train_repetitions = 128;  // 1.28 s per train
  bool switch_trains = true;
  /// Give up after this long in the page state (0 = never).
  Duration timeout = Duration::from_seconds(5.12);  // pageTO default
};

struct BackoffConfig {
  /// Max inquiry-response backoff, in slots; the slave sleeps
  /// uniform[0, max_slots] slots after hearing the first ID (spec: 1023).
  int max_slots = 1023;
  /// If true, a slave that already sent an FHS re-arms a new backoff and
  /// keeps responding to subsequent IDs (spec behaviour; lets the master
  /// recover responses lost to collisions).
  bool respond_repeatedly = true;
};

struct ChannelConfig {
  /// Independent per-packet loss probability (0 = error-free, the paper's
  /// assumption).
  double packet_error_rate = 0.0;
  /// Distance-dependent loss on top of packet_error_rate: a packet from a
  /// sender at distance d (within range R) is additionally lost with
  /// probability per_at_edge * (d/R)^per_exponent -- a soft coverage edge
  /// instead of the paper's hard 10 m disc. 0 disables it.
  double per_at_edge = 0.0;
  double per_exponent = 4.0;
  /// If true, when two transmissions on one channel overlap at a receiver,
  /// the one whose sender is at least `capture_ratio` times closer is
  /// received anyway (near-far capture). Off by default: BlueHoc's collision
  /// handling destroys both, which is what we reproduce.
  bool capture = false;
  double capture_ratio = 2.0;
  /// Default radio range (paper: piconet radius about 10 m).
  double default_range_m = 10.0;
  /// Shadowing noise on reported RSSI values (standard deviation, dB).
  double rssi_sigma_db = 2.0;
  /// Spatial delivery prefilter: listeners are indexed by RF channel and,
  /// once a channel is crowded, by a coarse position grid, so a transmission
  /// only visits listeners whose grid cells intersect its coverage disc.
  /// Semantically neutral (the exact range check still runs per candidate)
  /// except for the out_of_range stat, which only counts candidates that
  /// reach the exact check. Disable to force the linear scan over every
  /// listen on the channel (the equivalence test does).
  bool spatial_grid = true;
  /// Listener count above which one channel migrates from its flat listener
  /// list to the spatial grid (one-way). Most channels host a handful of
  /// scanners, for which a linear scan is faster than grid-cell probes; a
  /// hotspot channel (an auditorium of devices scanning the same hop) is
  /// what the grid is for.
  std::uint32_t grid_threshold = 48;
  /// Edge length of one grid cell, metres.
  double grid_cell_m = 16.0;
  /// Slack added to the search radius so listeners that walk away from the
  /// cell they were indexed under (position is snapshotted at start_listen)
  /// are still found. Listens live for milliseconds and people move at
  /// m/s, so centimetres of drift occur; 2 m is a wide safety margin.
  double grid_slack_m = 2.0;
  /// The RfChannel namespaces (inquiry set, per-address page sets) are
  /// modelled as disjoint, but physically they are 32-channel subsets of
  /// the same 79-channel ISM band. This is the probability that two
  /// time-overlapping transmissions from *different* sets land on the same
  /// physical frequency and interfere (~1/79 per hop pair for independent
  /// sequences; 0 keeps the idealised disjoint model).
  double cross_set_interference = 0.0;
  /// Exact-slot drumming: when true, inquiry/page masters re-arm their
  /// tx-slot process every 1250 us even when no listener could possibly
  /// hear them -- the original, fully-literal schedule -- and piconet
  /// masters drum every poll round, including the provable no-ops. When
  /// false (the default), a master whose channel set has no triggering
  /// listener within ff_radius() parks on a VirtualClock and fast-forwards
  /// closed-form to the instant one appears, and a drained piconet parks
  /// its poll loop until the earliest round whose outcome the supervision
  /// speed horizon cannot pin (see DESIGN.md section 5c). The two modes
  /// produce byte-identical discovery histories and presence streams for a
  /// fixed seed; only idle-slot bookkeeping differs.
  bool exact_slots = false;
  /// Safety slack, metres, added to the occupancy radius
  ///   ff_radius() = 2 * max_range_highwater + ff_slack_m
  /// which over-approximates every interaction chain a skipped transmission
  /// could join: a sender within range of a victim listener that is itself
  /// within range of the parked master (hence the factor 2); the slack
  /// absorbs listener drift between registration and delivery (same role as
  /// grid_slack_m).
  double ff_slack_m = 2.0;
};

struct BasebandConfig {
  InquiryConfig inquiry;
  PageConfig page;
  ScanConfig inquiry_scan;
  ScanConfig page_scan;
  BackoffConfig backoff;
  ChannelConfig channel;
};

}  // namespace bips::baseband
