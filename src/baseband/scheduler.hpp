// Master operational-cycle scheduler: the paper's core scheduling policy.
//
// A BIPS workstation must split its radio time between discovering new
// devices (inquiry) and serving already-enrolled slaves. The paper's
// conclusion: with a 15.4 s operational cycle (mean piconet crossing time of
// a walking user), a continuous inquiry slot of 3.84 s discovers ~95% of up
// to 20 slaves, leaving 11.56 s for service -- a ~24% tracking load. The
// Figure 2 simulation uses a 5 s cycle with a 1 s inquiry slot. Both are
// instances of this scheduler.
//
// Cycle structure:
//
//   |<----------- cycle_length ----------->|
//   | inquiry_length |   service phase     |
//   |  Inquirer on   |  page new devices,  |
//   |  piconet paused|  poll piconet       |
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "src/baseband/inquiry.hpp"
#include "src/baseband/paging.hpp"
#include "src/baseband/piconet.hpp"
#include "src/obs/metrics.hpp"

namespace bips::baseband {

struct SchedulerConfig {
  /// Continuous inquiry slot at the start of each cycle.
  Duration inquiry_length = Duration::from_seconds(3.84);
  /// Full operational cycle (inquiry + service).
  Duration cycle_length = Duration::from_seconds(15.4);
  /// If true, newly discovered devices are paged during the service phase
  /// and attached to the piconet.
  bool page_discovered = true;
  InquiryConfig inquiry;
  PageConfig page;
  PiconetMaster::Config piconet;
};

class MasterScheduler {
 public:
  /// A device answered an inquiry this cycle (deduplicated per inquiry
  /// session by the Inquirer).
  using DiscoveredCallback = std::function<void(const InquiryResponse&)>;
  /// Paging succeeded; the caller should attach the slave's link (the
  /// scheduler cannot see remote SlaveLink objects).
  using ConnectedCallback = std::function<void(BdAddr, SimTime)>;
  using PageFailedCallback = std::function<void(BdAddr)>;
  /// An inquiry phase just finished (used by trackers to close a round).
  using InquiryDoneCallback = std::function<void(SimTime)>;

  MasterScheduler(Device& dev, SchedulerConfig cfg);
  MasterScheduler(const MasterScheduler&) = delete;
  MasterScheduler& operator=(const MasterScheduler&) = delete;

  void set_on_discovered(DiscoveredCallback cb) { on_discovered_ = std::move(cb); }
  void set_on_connected(ConnectedCallback cb) { on_connected_ = std::move(cb); }
  void set_on_page_failed(PageFailedCallback cb) { on_page_failed_ = std::move(cb); }
  void set_on_inquiry_done(InquiryDoneCallback cb) { on_inquiry_done_ = std::move(cb); }

  /// Begins the periodic cycle at the current simulated time.
  void start();
  /// Begins the cycle after `offset`. Neighbouring workstations with
  /// overlapping coverage stagger their offsets so their inquiry slots do
  /// not interfere in the overlap region (ablation A4).
  void start_after(Duration offset);
  void stop();
  bool running() const { return running_; }
  bool in_inquiry_phase() const { return in_inquiry_; }

  PiconetMaster& piconet() { return piconet_; }
  const Inquirer& inquirer() const { return inquirer_; }
  const Pager& pager() const { return pager_; }
  Device& device() { return dev_; }

  /// Number of completed operational cycles.
  std::uint64_t cycles() const { return cycles_; }

 private:
  void begin_cycle();
  void end_inquiry_phase();
  void maybe_page_next();
  void handle_discovery(const InquiryResponse& r);

  Device& dev_;
  SchedulerConfig cfg_;
  Inquirer inquirer_;
  Pager pager_;
  PiconetMaster piconet_;

  DiscoveredCallback on_discovered_;
  ConnectedCallback on_connected_;
  PageFailedCallback on_page_failed_;
  InquiryDoneCallback on_inquiry_done_;

  bool running_ = false;
  bool in_inquiry_ = false;
  bool first_cycle_pending_ = false;  // start_after arms cycle_proc_ for the
                                      // initial cycle, which does not count
  std::uint64_t cycles_ = 0;
  obs::Counter* c_cycles_;  // "sched.cycles", resolved once at construction
  std::deque<InquiryResponse> page_queue_;
  std::unordered_set<BdAddr> queued_;  // dedup across cycles
  sim::Process cycle_proc_;
  sim::Process inquiry_end_proc_;
};

}  // namespace bips::baseband
