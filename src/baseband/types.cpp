#include "src/baseband/types.hpp"

#include <cstdio>

namespace bips::baseband {

std::string BdAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((raw_ >> 40) & 0xFF),
                static_cast<unsigned>((raw_ >> 32) & 0xFF),
                static_cast<unsigned>((raw_ >> 24) & 0xFF),
                static_cast<unsigned>((raw_ >> 16) & 0xFF),
                static_cast<unsigned>((raw_ >> 8) & 0xFF),
                static_cast<unsigned>(raw_ & 0xFF));
  return buf;
}

}  // namespace bips::baseband
