// Master-side inquiry (device discovery) state machine.
//
// While active, the master sweeps a 16-hop train: on every even slot it
// transmits two 68 us ID packets on consecutive train channels (one per
// 312.5 us half-slot) and listens for FHS responses on the two paired
// response channels. After N_inquiry repetitions of a train (2.56 s) it
// switches trains, if configured to.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "src/baseband/config.hpp"
#include "src/baseband/device.hpp"
#include "src/baseband/hopping.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {

class Inquirer {
 public:
  /// Called on every *first* FHS received from a given address within one
  /// start()..stop() inquiry session.
  using ResponseCallback = std::function<void(const InquiryResponse&)>;

  Inquirer(Device& dev, InquiryConfig cfg, ResponseCallback on_response);
  ~Inquirer() { stop(); }
  Inquirer(const Inquirer&) = delete;
  Inquirer& operator=(const Inquirer&) = delete;

  /// Enters the inquiry state at the device's next even slot boundary.
  /// Restarting while active is a no-op.
  void start();
  /// Leaves the inquiry state immediately (listens closed, events cancelled).
  void stop();

  bool active() const { return active_; }
  Train current_train() const { return train_; }
  /// Completed repetitions of the current train.
  int train_repetition() const { return reps_; }

  struct Stats {
    std::uint64_t ids_sent = 0;
    std::uint64_t fhs_received = 0;     // all, including duplicates
    std::uint64_t unique_responses = 0; // distinct addresses this session
    std::uint64_t train_switches = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void tx_slot();
  void second_id();
  void close_pair(int k);
  void on_fhs(const Packet& p, SimTime end);
  void advance_phase();

  Device& dev_;
  InquiryConfig cfg_;
  ResponseCallback on_response_;

  bool active_ = false;
  Train train_ = Train::kA;
  int reps_ = 0;            // completed repetitions of current train
  std::uint32_t tx_slot_ = 0;  // 0..kTrainTxSlots-1 within a repetition
  // Fixed per-session state the processes read instead of capturing: the
  // anonymous GIAC ID packet and the channel of the half-slot-delayed
  // second ID. Every even slot re-arms the same three process bodies with
  // no per-slot closure state.
  Packet id_packet_;
  std::uint32_t second_channel_ = 0;
  sim::Process slot_proc_;
  sim::Process id2_proc_;
  // Response listens of consecutive TX slots overlap by ~60 us, so up to
  // two close processes are pending at once; they (and the listen pairs
  // they close) rotate through these two.
  sim::Process close_procs_[2];
  ListenId open_pairs_[2][2] = {{kNoListen, kNoListen},
                                {kNoListen, kNoListen}};
  int close_rotor_ = 0;
  std::unordered_set<BdAddr> seen_;
  Stats stats_;
};

}  // namespace bips::baseband
