// Master-side inquiry (device discovery) state machine.
//
// While active, the master sweeps a 16-hop train: on every even slot it
// transmits two 68 us ID packets on consecutive train channels (one per
// 312.5 us half-slot) and listens for FHS responses on the two paired
// response channels. After N_inquiry repetitions of a train (2.56 s) it
// switches trains, if configured to.
//
// Virtual slots: unless ChannelConfig::exact_slots is set, a master whose
// inquiry namespace shows no triggering listener within ff_radius() parks
// the drumming on a VirtualClock and subscribes for occupancy; on wake it
// advances train/repetition phase closed-form, credits the skipped IDs and
// listen windows to the energy/statistics ledgers, reconstructs the (at
// most two) response-listen pairs still open as backdated listens, and
// replays the last skipped slot's second ID if its half-slot is still in
// the future. DESIGN.md section 5c derives why this is byte-equivalent to
// drumming every slot.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>

#include "src/baseband/config.hpp"
#include "src/baseband/device.hpp"
#include "src/baseband/hopping.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/virtual_clock.hpp"

namespace bips::baseband {

class Inquirer {
 public:
  /// Called on every *first* FHS received from a given address within one
  /// start()..stop() inquiry session.
  using ResponseCallback = std::function<void(const InquiryResponse&)>;

  Inquirer(Device& dev, InquiryConfig cfg, ResponseCallback on_response);
  ~Inquirer() { stop(); }
  Inquirer(const Inquirer&) = delete;
  Inquirer& operator=(const Inquirer&) = delete;

  /// Enters the inquiry state at the device's next even slot boundary.
  /// Restarting while active is a no-op.
  void start();
  /// Leaves the inquiry state immediately (listens closed, events cancelled).
  void stop();

  bool active() const { return active_; }
  Train current_train() const { return train_; }
  /// Completed repetitions of the current train.
  int train_repetition() const { return reps_; }

  struct Stats {
    std::uint64_t ids_sent = 0;
    std::uint64_t fhs_received = 0;     // all, including duplicates
    std::uint64_t unique_responses = 0; // distinct addresses this session
    std::uint64_t train_switches = 0;
  };
  /// Mode-invariant: while parked, the IDs the exact path would have sent
  /// by now are credited lazily, so a mid-park reader sees the same counts
  /// in both modes.
  const Stats& stats() const {
    sync_park_stats();
    return stats_;
  }

 private:
  void tx_slot();
  void second_id();
  void close_pair(int k);
  void on_fhs(const Packet& p, SimTime end);
  void advance_phase();
  void park(SimTime t0);
  void wake();
  void retire_park(SimTime now);
  /// (train, tx_slot) the drumming would show at the k-th slot after the
  /// park point, without mutating the live phase.
  std::pair<Train, std::uint32_t> phase_at(std::uint64_t k) const;
  /// Advances train_/reps_/tx_slot_ (and the train-switch statistic) by n
  /// slots in O(1) -- the closed form of n advance_phase() calls.
  void advance_phase_by(std::uint64_t n);
  /// Folds the IDs -- and the energy of the elided TX/listen activity --
  /// of the current park (so far) into the ledgers without ending it;
  /// wake()/retire_park() subtract what was already credited.
  void sync_park_stats() const;

  Device& dev_;
  InquiryConfig cfg_;
  ResponseCallback on_response_;

  bool active_ = false;
  bool exact_ = true;  // snapshot of ChannelConfig::exact_slots at start()
  Train train_ = Train::kA;
  int reps_ = 0;            // completed repetitions of current train
  std::uint32_t tx_slot_ = 0;  // 0..kTrainTxSlots-1 within a repetition
  // Fixed per-session state the processes read instead of capturing: the
  // anonymous GIAC ID packet and the channel of the half-slot-delayed
  // second ID. Every even slot re-arms the same three process bodies with
  // no per-slot closure state.
  Packet id_packet_;
  std::uint32_t second_channel_ = 0;
  sim::Process slot_proc_;
  sim::Process id2_proc_;
  // Response listens of consecutive TX slots overlap by ~60 us, so up to
  // two close processes are pending at once; they (and the listen pairs
  // they close) rotate through these two.
  sim::Process close_procs_[2];
  ListenId open_pairs_[2][2] = {{kNoListen, kNoListen},
                                {kNoListen, kNoListen}};
  int close_rotor_ = 0;
  std::unordered_set<BdAddr> seen_;
  // Fast-forward state: the parked cadence (one activation per two slots),
  // the wake process the occupancy callback arms (callbacks may only
  // schedule), and the pending subscription, if any.
  sim::VirtualClock vclock_;
  sim::Process wake_proc_;
  OccupancySubId occ_sub_ = kNoOccupancySub;
  // Mutable for sync_park_stats(): a const stats() read mid-park credits
  // the elided IDs lazily. park_ids_credited_ is what the current park has
  // already folded in (reset to 0 when the park ends); the two Durations
  // are the TX / listen energy the same lazy reads already pushed into the
  // device's EnergyMeter, subtracted from the bulk credit at wake/retire.
  mutable Stats stats_;
  mutable std::uint64_t park_ids_credited_ = 0;
  mutable Duration park_tx_credited_;
  mutable Duration park_listen_credited_;
};

}  // namespace bips::baseband
