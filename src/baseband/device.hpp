// Base class for simulated Bluetooth devices.
//
// Owns the pieces every controller shares: the native clock (random phase),
// a forked RNG stream, a position (static or provided by a mobility model),
// and the attachment to the radio channel. Protocol state machines
// (Inquirer, InquiryScanner, Pager, ...) hold a reference to a Device and
// register their own per-listen handlers, so the default on_packet drops
// stray traffic.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "src/baseband/clock.hpp"
#include "src/baseband/radio.hpp"
#include "src/baseband/types.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/geom.hpp"
#include "src/util/rng.hpp"

namespace bips::baseband {

/// Accumulated radio-on time of a device -- the battery currency that
/// motivates the spec's 0.9% default scan duty cycle (11.25 ms / 1.28 s).
struct EnergyMeter {
  Duration listen_time;
  Duration tx_time;

  Duration radio_on() const { return listen_time + tx_time; }
  /// Fraction of `horizon` the radio was on.
  double duty(Duration horizon) const {
    return horizon > Duration(0)
               ? static_cast<double>(radio_on().ns()) /
                     static_cast<double>(horizon.ns())
               : 0.0;
  }
};

class Device : public RadioDevice {
 public:
  /// `range_m` <= 0 means "use the channel's default range".
  Device(sim::Simulator& sim, RadioChannel& radio, BdAddr addr, Rng rng,
         Vec2 pos = {}, double range_m = 0.0)
      : sim_(sim),
        radio_(radio),
        addr_(addr),
        rng_(std::move(rng)),
        clock_(static_cast<std::uint32_t>(rng_.next_u64())),
        pos_(pos),
        range_m_(range_m) {}

  ~Device() override { radio_.stop_all_listens(this); }

  // RadioDevice:
  BdAddr addr() const override { return addr_; }
  Vec2 position() const override {
    return position_provider_ ? position_provider_() : pos_;
  }
  double range_m() const override { return range_m_; }
  void on_packet(const Packet&, RfChannel, SimTime) override {}
  void account_tx(Duration d) override { energy_.tx_time += d; }
  void account_listen(Duration d) override { energy_.listen_time += d; }

  /// Radio-on time accumulated so far (open listens not yet credited).
  const EnergyMeter& energy() const { return energy_; }

  const NativeClock& clock() const { return clock_; }
  sim::Simulator& sim() { return sim_; }
  RadioChannel& radio() { return radio_; }
  Rng& rng() { return rng_; }

  void set_position(Vec2 p) {
    pos_ = p;
    notify_position_changed();
  }
  /// Lets a mobility model drive the position (queried on every delivery).
  void set_position_provider(std::function<Vec2()> f) {
    position_provider_ = std::move(f);
    notify_position_changed();
  }

  /// Registers a callback fired after every discrete position write
  /// (set_position / provider install) -- the teleport-style moves a
  /// fast-forwarded process cannot bound with a speed horizon. Continuous
  /// provider-driven motion does NOT fire it. Returns a token for
  /// remove_position_listener().
  int add_position_listener(std::function<void()> f) {
    position_listeners_.emplace_back(next_position_listener_, std::move(f));
    return next_position_listener_++;
  }
  void remove_position_listener(int token) {
    for (std::size_t i = 0; i < position_listeners_.size(); ++i) {
      if (position_listeners_[i].first == token) {
        position_listeners_.erase(position_listeners_.begin() +
                                  static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

 private:
  void notify_position_changed() {
    // Iterate by index: a listener body may register/unregister listeners
    // (e.g. a woken piconet master detaching a slave).
    for (std::size_t i = 0; i < position_listeners_.size(); ++i) {
      position_listeners_[i].second();
    }
  }

  sim::Simulator& sim_;
  RadioChannel& radio_;
  BdAddr addr_;
  Rng rng_;
  NativeClock clock_;
  Vec2 pos_;
  double range_m_;
  EnergyMeter energy_;
  std::function<Vec2()> position_provider_;
  std::vector<std::pair<int, std::function<void()>>> position_listeners_;
  int next_position_listener_ = 0;
};

}  // namespace bips::baseband
