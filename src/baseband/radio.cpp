#include "src/baseband/radio.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"
#include "src/util/log.hpp"

namespace bips::baseband {
namespace {

// Longest on-air packet (FHS/ACL: 366 us) with margin; bounds how far back
// the collision-overlap scan must look in a start-time-ordered bucket.
constexpr Duration kMaxPacketAir = Duration::micros(400);

std::uint64_t cell_key(std::int32_t cx, std::int32_t cy) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32 |
         static_cast<std::uint32_t>(cy);
}

// ListenId <-> (arena slot, generation), mirroring the event kernel's ids:
// the +1 keeps slot 0 distinct from kNoListen.
ListenId make_listen_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<ListenId>(slot) + 1) << 32 | generation;
}
std::uint32_t listen_slot_of(ListenId id) {
  return static_cast<std::uint32_t>(id >> 32) - 1;
}
std::uint32_t listen_generation_of(ListenId id) {
  return static_cast<std::uint32_t>(id);
}

// Hash combiner (boost-style accumulate + splitmix64 finaliser) for the
// per-reception draw seeds. Quality matters only insofar as nearby inputs
// (consecutive slot times, consecutive addresses) must give uncorrelated
// streams, which the splitmix finaliser guarantees.
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

RadioChannel::ChannelState& RadioChannel::channel_state(RfChannel ch) {
  BIPS_ASSERT(ch.index < kChannelIndexSpan);
  NsChannels* nsc;
  if (ch.ns == 0) {
    nsc = &inquiry_ns_;
  } else {
    std::unique_ptr<NsChannels>& block = page_ns_[ch.ns];
    if (!block) block = std::make_unique<NsChannels>();
    nsc = block.get();
  }
  std::unique_ptr<ChannelState>& slot = nsc->ch[ch.index];
  if (!slot) slot = std::make_unique<ChannelState>();
  return *slot;
}

std::uint64_t RadioChannel::grid_cell(Vec2 pos) const {
  const double cell = cfg_.grid_cell_m;
  return cell_key(static_cast<std::int32_t>(std::floor(pos.x / cell)),
                  static_cast<std::int32_t>(std::floor(pos.y / cell)));
}

void RadioChannel::transmit(RadioDevice* sender, RfChannel ch, Packet p) {
  BIPS_ASSERT(sender != nullptr);
  BIPS_ASSERT(p.duration() <= kMaxPacketAir);
  note_range(sender);
  const SimTime start = sim_.now();
  const SimTime end = start + p.duration();
  ChannelState& cs = channel_state(ch);
  TxQueue& q = cfg_.cross_set_interference > 0 ? global_recent_ : cs.recent;
  q.push_back(Transmission{sender, ch, start, end, p});
  c_transmissions_->inc();
  sender->account_tx(p.duration());
  // Deque references are stable under push_back and pop_front, so the
  // delivery event can carry the channel state and element by pointer: no
  // packet copy into the closure and no map probe at delivery time. The
  // element cannot be pruned before its own delivery (the horizon trails
  // `now` by several slots).
  const Transmission* t = &q.back();
  sim_.schedule_at(end, [this, csp = &cs, t] { deliver(*csp, *t); });
}

ListenId RadioChannel::start_listen(RadioDevice* d, RfChannel ch,
                                    PacketHandler handler, ListenKind kind) {
  return start_listen_backdated(d, ch, sim_.now(), std::move(handler), kind);
}

ListenId RadioChannel::start_listen_backdated(RadioDevice* d, RfChannel ch,
                                              SimTime since,
                                              PacketHandler handler,
                                              ListenKind kind) {
  BIPS_ASSERT(d != nullptr);
  BIPS_ASSERT(since <= sim_.now());
  note_range(d);
  std::uint32_t slot;
  if (!lfree_.empty()) {
    slot = lfree_.back();
    lfree_.pop_back();
  } else {
    BIPS_ASSERT_MSG(lslots_.size() < static_cast<std::size_t>(UINT32_MAX) - 1,
                    "listen arena exhausted");
    slot = static_cast<std::uint32_t>(lslots_.size());
    lslots_.emplace_back();
  }
  ChannelState& cs = channel_state(ch);
  ListenSlot& l = lslots_[slot];
  const ListenId id = make_listen_id(slot, l.generation);
  l.device = d;
  l.chan = &cs;
  l.since = since;
  l.handler = std::move(handler);
  l.ns = ch.ns;
  l.kind = kind;

  const CellEntry entry{id, next_listen_seq_++, d, l.since};
  if (cs.grid) {
    l.cell = grid_cell(d->position());
    cs.cells[l.cell].push_back(entry);
  } else {
    // Flat mode never reads the cell, so the position lookup is skipped --
    // the dominant case for the short-lived response listens that churn at
    // tens of thousands per simulated second.
    cs.flat.push_back(entry);
  }
  ++cs.listens;
  if (!cs.grid && cfg_.spatial_grid && cs.listens > cfg_.grid_threshold) {
    migrate_to_grid(cs);
  }
  d->active_listens_.push_back(id);
  // Last, after the listen is fully registered: a fired subscription's
  // callback schedules a wake process at `now`, and by the time it runs the
  // scanner state it is waking for must be visible.
  if (kind == ListenKind::kTriggering) {
    add_trigger(ch.ns, d->position(), SimTime::max(), id);
  }
  return id;
}

void RadioChannel::migrate_to_grid(ChannelState& cs) {
  cs.grid = true;
  for (const CellEntry& e : cs.flat) {
    ListenSlot& l = lslots_[listen_slot_of(e.id)];
    // Index under the *current* position: at least as accurate as the
    // registration-time cell, and the delivery-side range check is exact
    // either way (the grid only culls, it never admits).
    l.cell = grid_cell(l.device->position());
    cs.cells[l.cell].push_back(e);
  }
  cs.flat.clear();
  cs.flat.shrink_to_fit();
}

void RadioChannel::stop_listen(ListenId id) {
  if (id == kNoListen) return;
  const std::uint32_t slot = listen_slot_of(id);
  if (slot >= lslots_.size()) return;
  ListenSlot& l = lslots_[slot];
  // Stale id (already stopped, slot possibly reused): a true no-op.
  if (l.device == nullptr || l.generation != listen_generation_of(id)) return;

  l.device->account_listen(sim_.now() - l.since);
  if (l.kind == ListenKind::kTriggering) remove_trigger(l.ns, id);

  ChannelState& cs = *l.chan;
  std::vector<CellEntry>* entries = cs.grid ? cs.cells.find(l.cell) : &cs.flat;
  BIPS_ASSERT(entries != nullptr);
  const auto pos = std::find_if(entries->begin(), entries->end(),
                                [id](const CellEntry& e) { return e.id == id; });
  BIPS_ASSERT(pos != entries->end());
  *pos = entries->back();  // order is irrelevant: deliver() sorts candidates
  entries->pop_back();
  BIPS_ASSERT(cs.listens > 0);
  --cs.listens;

  std::vector<ListenId>& mine = l.device->active_listens_;
  const auto dpos = std::find(mine.begin(), mine.end(), id);
  BIPS_ASSERT(dpos != mine.end());
  *dpos = mine.back();
  mine.pop_back();

  // Retire the arena slot under a fresh generation. During a delivery the
  // free-list push (and the handler teardown) is deferred: the delivery's
  // candidate snapshot references handlers by slot, so a slot stopped by an
  // earlier candidate's handler must keep its handler until the snapshot is
  // done -- and must not be reused by a start_listen in the meantime.
  ++l.generation;
  l.device = nullptr;
  l.chan = nullptr;
  if (in_delivery_) {
    deferred_free_.push_back(slot);
  } else {
    l.handler = nullptr;
    lfree_.push_back(slot);
  }
}

void RadioChannel::stop_all_listens(RadioDevice* d) {
  while (!d->active_listens_.empty()) stop_listen(d->active_listens_.back());
}

RadioChannel::Occupancy& RadioChannel::occupancy(std::uint32_t ns) {
  if (ns == 0) return inquiry_occ_;
  std::unique_ptr<Occupancy>& block = page_occ_[ns];
  if (!block) block = std::make_unique<Occupancy>();
  return *block;
}

void RadioChannel::add_trigger(std::uint32_t ns, Vec2 pos, SimTime until,
                               ListenId id) {
  Occupancy& o = occupancy(ns);
  o.points.push_back(TriggerPoint{pos, until, id});
  if (o.subs.empty()) return;
  // Fire every subscription the new point satisfies, in subscription order.
  // Stable compaction first, callbacks after: a callback may subscribe
  // again (not these callers, but nothing here should care).
  fired_cbs_.clear();
  const double r = ff_radius();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < o.subs.size(); ++i) {
    if (distance_sq(o.subs[i].pos, pos) <= r * r) {
      fired_cbs_.push_back(std::move(o.subs[i].cb));
    } else {
      if (keep != i) o.subs[keep] = std::move(o.subs[i]);
      ++keep;
    }
  }
  o.subs.resize(keep);
  c_occ_wakeups_->inc(fired_cbs_.size());
  const SimTime now = sim_.now();
  for (OccupancyCallback& cb : fired_cbs_) cb(now);
  fired_cbs_.clear();
}

void RadioChannel::remove_trigger(std::uint32_t ns, ListenId id) {
  Occupancy& o = occupancy(ns);
  for (std::size_t i = 0; i < o.points.size(); ++i) {
    if (o.points[i].listen == id) {
      o.points[i] = o.points.back();
      o.points.pop_back();
      return;
    }
  }
  BIPS_ASSERT_MSG(false, "triggering listen without a trigger point");
}

void RadioChannel::occupancy_hold(RfChannel ch, Vec2 pos, SimTime until) {
  add_trigger(ch.ns, pos, until, kNoListen);
}

bool RadioChannel::occupied(std::uint32_t ns, Vec2 pos) {
  Occupancy& o = occupancy(ns);
  const SimTime now = sim_.now();
  const double r = ff_radius();
  bool hit = false;
  for (std::size_t i = 0; i < o.points.size();) {
    // Holds expire lazily; `until` is exclusive (a transmission starting
    // exactly when the held response flight ends cannot overlap it).
    if (o.points[i].until <= now) {
      o.points[i] = o.points.back();
      o.points.pop_back();
      continue;
    }
    if (distance_sq(o.points[i].pos, pos) <= r * r) hit = true;
    ++i;
  }
  return hit;
}

OccupancySubId RadioChannel::subscribe_occupancy(std::uint32_t ns, Vec2 pos,
                                                 OccupancyCallback cb) {
  const OccupancySubId id = next_sub_id_++;
  occupancy(ns).subs.push_back(OccSubscriber{id, pos, std::move(cb)});
  sub_order_.emplace_back(ns, id);
  // sub_order_ keeps stale entries (fired / cancelled subscriptions) until
  // this occasional compaction; liveness is re-checked on use either way.
  if (sub_order_.size() > 64 && sub_order_.size() > 4 * live_subs()) {
    std::size_t keep = 0;
    for (const auto& [sns, sid] : sub_order_) {
      const auto& subs = occupancy(sns).subs;
      for (const OccSubscriber& s : subs) {
        if (s.id == sid) {
          sub_order_[keep++] = {sns, sid};
          break;
        }
      }
    }
    sub_order_.resize(keep);
  }
  return id;
}

void RadioChannel::unsubscribe_occupancy(std::uint32_t ns, OccupancySubId id) {
  std::vector<OccSubscriber>& subs = occupancy(ns).subs;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    if (subs[i].id == id) {
      subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t RadioChannel::live_subs() const {
  std::size_t n = inquiry_occ_.subs.size();
  page_occ_.for_each(
      [&n](std::uint64_t, const std::unique_ptr<Occupancy>& o) {
        if (o) n += o->subs.size();
      });
  return n;
}

void RadioChannel::note_range(const RadioDevice* d) {
  const double r = tx_range(d);
  if (r <= max_range_hw_) return;
  // The park predicate just widened under every parked master: fire every
  // pending subscription (in global subscription order) and let each owner
  // re-evaluate against the new radius. This is a cold path -- it can only
  // happen as many times as there are distinct device ranges.
  max_range_hw_ = r;
  fired_cbs_.clear();
  for (const auto& [sns, sid] : sub_order_) {
    std::vector<OccSubscriber>& subs = occupancy(sns).subs;
    for (std::size_t i = 0; i < subs.size(); ++i) {
      if (subs[i].id == sid) {
        fired_cbs_.push_back(std::move(subs[i].cb));
        subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  sub_order_.clear();
  c_occ_wakeups_->inc(fired_cbs_.size());
  const SimTime now = sim_.now();
  for (OccupancyCallback& cb : fired_cbs_) cb(now);
  fired_cbs_.clear();
}

double RadioChannel::rssi_dbm(double distance_m) {
  return rssi_dbm(distance_m, rng_);
}

double RadioChannel::rssi_dbm(double distance_m, Rng& rng) const {
  const double d = std::max(distance_m, 0.1);
  return -40.0 - 25.0 * std::log10(d) + rng.normal(0.0, cfg_.rssi_sigma_db);
}

double RadioChannel::tx_range(const RadioDevice* tx) const {
  return tx->range_m() > 0 ? tx->range_m() : cfg_.default_range_m;
}

bool RadioChannel::in_range(const RadioDevice* rx, const RadioDevice* tx) const {
  const double range = tx_range(tx);
  return distance_sq(rx->position(), tx->position()) <= range * range;
}

void RadioChannel::prune(TxQueue& q, SimTime now) {
  // Keep transmissions whose interference window could still matter; the
  // longest packet is well under two slots. Entries are start-ordered, so
  // a non-prunable front bounds every later entry to within one air time.
  const SimTime horizon = now - 4 * kSlot;
  while (!q.empty() && q.front().end < horizon) q.pop_front();
}

void RadioChannel::gather_candidates(const ChannelState& cs,
                                     const Transmission& tx) {
  candidate_seqs_.clear();
  candidates_.clear();
  // O(1) early-out: no listen anywhere on this channel (the common case for
  // inquiry/page IDs swept across 32 hops).
  if (cs.listens == 0) return;

  const auto consider = [&](const CellEntry& e) {
    if (e.device == tx.sender) return;
    if (e.since > tx.start) return;  // tuned in mid-packet: missed it
    candidate_seqs_.push_back(
        OrderKey{e.since, e.device->addr().raw(), e.seq, listen_slot_of(e.id)});
  };

  if (cs.grid) {
    const Vec2 c = tx.sender->position();
    const double reach = tx_range(tx.sender) + cfg_.grid_slack_m;
    const double cell = cfg_.grid_cell_m;
    const auto x0 = static_cast<std::int32_t>(std::floor((c.x - reach) / cell));
    const auto x1 = static_cast<std::int32_t>(std::floor((c.x + reach) / cell));
    const auto y0 = static_cast<std::int32_t>(std::floor((c.y - reach) / cell));
    const auto y1 = static_cast<std::int32_t>(std::floor((c.y + reach) / cell));
    for (std::int32_t cx = x0; cx <= x1; ++cx) {
      for (std::int32_t cy = y0; cy <= y1; ++cy) {
        const std::vector<CellEntry>* entries =
            cs.cells.find(cell_key(cx, cy));
        if (entries == nullptr) continue;
        for (const CellEntry& e : *entries) consider(e);
      }
    }
  } else {
    for (const CellEntry& e : cs.flat) consider(e);
  }

  // (since, addr, seq) order: deterministic, identical between the flat and
  // grid paths, independent of hash iteration order, arena slot reuse, and
  // -- via the address tie-break -- of how same-instant registrations by
  // different devices interleaved; the `since` component slots backdated
  // reconstructed listens exactly where their exact-mode twins would have
  // sorted (see OrderKey in radio.hpp).
  std::sort(candidate_seqs_.begin(), candidate_seqs_.end());
  candidates_.reserve(candidate_seqs_.size());
  for (const OrderKey& k : candidate_seqs_) {
    candidates_.push_back(Candidate{lslots_[k.slot].device, k.slot});
  }
}

void RadioChannel::deliver(ChannelState& cs, const Transmission& tx) {
  TxQueue& q = cfg_.cross_set_interference > 0 ? global_recent_ : cs.recent;
  prune(q, sim_.now());  // cannot evict `tx` itself: tx.end == now

  // Snapshot matching listeners first: on_packet may start/stop listens.
  gather_candidates(cs, tx);
  if (candidates_.empty()) return;
  in_delivery_ = true;

  // Overlap window in the start-ordered bucket: anything that began more
  // than one air time before tx already ended, anything at tx.end or later
  // began after it ended. Indices, not iterators: a candidate's handler may
  // transmit() synchronously, and deque::push_back invalidates iterators
  // (appends at the back never enter the window -- they start at tx.end).
  const std::size_t first_idx = static_cast<std::size_t>(
      std::lower_bound(q.begin(), q.end(), tx.start - kMaxPacketAir,
                       [](const Transmission& t, SimTime s) {
                         return t.start < s;
                       }) -
      q.begin());

  for (const Candidate& c : candidates_) {
    if (!in_range(c.device, tx.sender)) {
      c_out_of_range_->inc();
      continue;
    }
    // All randomness below (cross-set clash, packet error, RSSI shadowing)
    // comes from hash-derived streams keyed by the identity of the
    // (transmission, receiver) pair rather than from the shared generator:
    // whether some *other* reception happened -- in particular a junk ID
    // landing in a response listen a fast-forwarding master never opened --
    // must not shift anyone else's draws. That keying is what makes the
    // exact and virtual slot modes byte-identical (DESIGN.md section 5c).
    const std::uint64_t rxseed = mix64(
        mix64(mix64(mix64(draw_seed_, static_cast<std::uint64_t>(tx.start.ns())),
                    tx.sender->addr().raw()),
              c.device->addr().raw()),
        static_cast<std::uint64_t>(tx.ch.ns) << 32 | tx.ch.index);
    Rng rxr(rxseed);
    // Interference check: any other overlapping in-range transmission on
    // the same channel destroys the packet (BlueHoc collision rule).
    bool destroyed = false;
    const double d_signal = distance(c.device->position(),
                                     tx.sender->position());
    for (std::size_t i = first_idx; i < q.size() && q[i].start < tx.end; ++i) {
      const Transmission& other = q[i];
      if (other.sender == tx.sender && other.start == tx.start &&
          other.ch == tx.ch) {
        continue;  // the packet itself
      }
      const bool same_channel = other.ch == tx.ch;
      if (!same_channel && cfg_.cross_set_interference <= 0) continue;
      if (other.end <= tx.start || other.start >= tx.end) continue;
      if (!in_range(c.device, other.sender)) continue;
      if (!same_channel) {
        // Different hop sets: they only clash if both hops landed on the
        // same physical ISM frequency this time. Keyed additionally by the
        // interferer so each overlapping pair rolls independently.
        Rng ir(mix64(mix64(rxseed,
                           static_cast<std::uint64_t>(other.start.ns())),
                     other.sender->addr().raw()));
        if (!ir.chance(cfg_.cross_set_interference)) continue;
      }
      if (cfg_.capture) {
        const double d_interf =
            distance(c.device->position(), other.sender->position());
        if (d_signal * cfg_.capture_ratio <= d_interf) continue;  // captured
      }
      destroyed = true;
      break;
    }
    if (destroyed) {
      c_collisions_->inc();
      continue;
    }
    double per = cfg_.packet_error_rate;
    if (cfg_.per_at_edge > 0) {
      const double range = tx_range(tx.sender);
      const double frac = range > 0 ? d_signal / range : 1.0;
      per += cfg_.per_at_edge * std::pow(frac, cfg_.per_exponent);
    }
    if (per > 0 && rxr.chance(per)) {
      c_dropped_per_->inc();
      continue;
    }
    c_deliveries_->inc();
    Packet delivered = tx.packet;
    delivered.rssi_dbm = rssi_dbm(d_signal, rxr);
    // Copied, not referenced: the handler body may start listens, and arena
    // growth would move a std::function we are standing inside. Deliveries
    // are rare (most candidates fail the range check first), so this copy
    // is off the hot path.
    PacketHandler handler = lslots_[c.slot].handler;
    if (handler) {
      handler(delivered, tx.ch, tx.end);
    } else {
      c.device->on_packet(delivered, tx.ch, tx.end);
    }
  }

  in_delivery_ = false;
  for (const std::uint32_t slot : deferred_free_) {
    lslots_[slot].handler = nullptr;
    lfree_.push_back(slot);
  }
  deferred_free_.clear();
}

}  // namespace bips::baseband
