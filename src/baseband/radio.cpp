#include "src/baseband/radio.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"
#include "src/util/log.hpp"

namespace bips::baseband {

void RadioChannel::transmit(RadioDevice* sender, RfChannel ch, Packet p) {
  BIPS_ASSERT(sender != nullptr);
  const SimTime start = sim_.now();
  const SimTime end = start + p.duration();
  recent_.push_back(Transmission{sender, ch, start, end, p});
  ++stats_.transmissions;
  sender->account_tx(p.duration());
  // Copy the transmission into the closure: recent_ may reallocate.
  const Transmission tx = recent_.back();
  sim_.schedule_at(end, [this, tx] { deliver(tx); });
}

ListenId RadioChannel::start_listen(RadioDevice* d, RfChannel ch,
                                    PacketHandler handler) {
  BIPS_ASSERT(d != nullptr);
  const ListenId id = next_listen_++;
  listens_.emplace(id, Listen{d, ch, sim_.now(), std::move(handler)});
  return id;
}

void RadioChannel::stop_listen(ListenId id) {
  if (id == kNoListen) return;
  const auto it = listens_.find(id);
  if (it == listens_.end()) return;
  it->second.device->account_listen(sim_.now() - it->second.since);
  listens_.erase(it);
}

void RadioChannel::stop_all_listens(RadioDevice* d) {
  for (auto it = listens_.begin(); it != listens_.end();) {
    if (it->second.device == d) {
      d->account_listen(sim_.now() - it->second.since);
      it = listens_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t RadioChannel::listen_count(const RadioDevice* d) const {
  std::size_t n = 0;
  for (const auto& [id, l] : listens_) {
    if (l.device == d) ++n;
  }
  return n;
}

double RadioChannel::rssi_dbm(double distance_m) {
  const double d = std::max(distance_m, 0.1);
  return -40.0 - 25.0 * std::log10(d) + rng_.normal(0.0, cfg_.rssi_sigma_db);
}

bool RadioChannel::in_range(const RadioDevice* rx, const RadioDevice* tx) const {
  const double range =
      tx->range_m() > 0 ? tx->range_m() : cfg_.default_range_m;
  return distance_sq(rx->position(), tx->position()) <= range * range;
}

void RadioChannel::prune(SimTime now) {
  // Keep transmissions whose interference window could still matter; the
  // longest packet is well under two slots.
  const SimTime horizon = now - 4 * kSlot;
  std::erase_if(recent_, [&](const Transmission& t) { return t.end < horizon; });
}

void RadioChannel::deliver(const Transmission& tx) {
  prune(sim_.now());

  // Snapshot matching listeners first: on_packet may mutate listens_.
  struct Candidate {
    RadioDevice* device;
    PacketHandler handler;
  };
  std::vector<Candidate> candidates;
  for (const auto& [id, l] : listens_) {
    if (!(l.ch == tx.ch)) continue;
    if (l.device == tx.sender) continue;
    if (l.since > tx.start) continue;  // tuned in mid-packet: missed it
    candidates.push_back(Candidate{l.device, l.handler});
  }

  for (const Candidate& c : candidates) {
    if (!in_range(c.device, tx.sender)) {
      ++stats_.out_of_range;
      continue;
    }
    // Interference check: any other overlapping in-range transmission on
    // the same channel destroys the packet (BlueHoc collision rule).
    bool destroyed = false;
    const double d_signal = distance(c.device->position(),
                                     tx.sender->position());
    for (const Transmission& other : recent_) {
      if (other.sender == tx.sender && other.start == tx.start &&
          other.ch == tx.ch) {
        continue;  // the packet itself
      }
      const bool same_channel = other.ch == tx.ch;
      if (!same_channel && cfg_.cross_set_interference <= 0) continue;
      if (other.end <= tx.start || other.start >= tx.end) continue;
      if (!in_range(c.device, other.sender)) continue;
      if (!same_channel) {
        // Different hop sets: they only clash if both hops landed on the
        // same physical ISM frequency this time.
        if (!rng_.chance(cfg_.cross_set_interference)) continue;
      }
      if (cfg_.capture) {
        const double d_interf =
            distance(c.device->position(), other.sender->position());
        if (d_signal * cfg_.capture_ratio <= d_interf) continue;  // captured
      }
      destroyed = true;
      break;
    }
    if (destroyed) {
      ++stats_.collisions;
      continue;
    }
    double per = cfg_.packet_error_rate;
    if (cfg_.per_at_edge > 0) {
      const double range = tx.sender->range_m() > 0 ? tx.sender->range_m()
                                                    : cfg_.default_range_m;
      const double frac = range > 0 ? d_signal / range : 1.0;
      per += cfg_.per_at_edge * std::pow(frac, cfg_.per_exponent);
    }
    if (per > 0 && rng_.chance(per)) {
      ++stats_.dropped_per;
      continue;
    }
    ++stats_.deliveries;
    Packet delivered = tx.packet;
    delivered.rssi_dbm = rssi_dbm(d_signal);
    if (c.handler) {
      c.handler(delivered, tx.ch, tx.end);
    } else {
      c.device->on_packet(delivered, tx.ch, tx.end);
    }
  }
}

}  // namespace bips::baseband
