// Hop selection for inquiry and page procedures.
//
// The real hop-selection kernel maps (address, clock) to one of 79 RF
// channels; for inquiry it uses the GIAC, so every device derives the same
// 32-channel subsequence, split into two 16-hop trains A and B. The timing
// behaviour the paper measures depends only on (a) which train covers the
// scanner's channel and (b) the 10 ms train sweep -- not on absolute RF
// channel numbers. We therefore model the inquiry set as indices 0..31 with
// train A = {0..15} and train B = {16..31}, and give each paged address its
// own 32-channel namespace (see RfChannel).
#pragma once

#include <cstdint>

#include "src/baseband/config.hpp"
#include "src/baseband/types.hpp"
#include "src/util/assert.hpp"

namespace bips::baseband {

inline constexpr std::uint32_t kChannelsPerSet = 32;
inline constexpr std::uint32_t kTrainSize = 16;
/// TX (even) slots needed to sweep one train: two channels per TX slot.
inline constexpr std::uint32_t kTrainTxSlots = kTrainSize / 2;

/// Index 0..31 -> owning train.
constexpr Train train_of(std::uint32_t index) {
  return index < kTrainSize ? Train::kA : Train::kB;
}

/// First index of a train.
constexpr std::uint32_t train_base(Train t) {
  return t == Train::kA ? 0 : kTrainSize;
}

constexpr Train other_train(Train t) {
  return t == Train::kA ? Train::kB : Train::kA;
}

/// Channel transmitted at TX-slot `tx_slot` (0..7 within a train sweep),
/// half-slot `half` (0 or 1), while on train `t`.
constexpr std::uint32_t inquiry_tx_channel(Train t, std::uint32_t tx_slot,
                                           std::uint32_t half) {
  return train_base(t) + (tx_slot * 2 + half) % kTrainSize;
}

/// The inquiry-response channel paired with an inquiry TX channel. In the
/// spec the response sequence is a distinct 32-channel set in one-to-one
/// correspondence with the inquiry set; the identity mapping preserves the
/// collision structure (two slaves answering the same ID collide; slaves
/// answering different IDs do not).
constexpr RfChannel inquiry_response_channel(std::uint32_t tx_index) {
  return RfChannel{0, tx_index};
}

/// The GIAC inquiry channel as an RfChannel.
constexpr RfChannel inquiry_channel(std::uint32_t index) {
  return RfChannel{0, index};
}

/// Namespace of the page hopping set for a target address (never 0, which
/// is reserved for inquiry).
inline std::uint32_t page_namespace(BdAddr target) {
  // Low 28 address bits feed the real kernel; any stable non-zero mix works
  // here because page sets of distinct addresses never interact in-model.
  return static_cast<std::uint32_t>(
             (target.raw() ^ (target.raw() >> 24)) & 0x0FFF'FFFF) | 0x1000'0000;
}

inline RfChannel page_channel(BdAddr target, std::uint32_t index) {
  BIPS_ASSERT(index < kChannelsPerSet);
  return RfChannel{page_namespace(target), index};
}

/// The page-scan channel a device listens on: driven by CLKN16-12 exactly
/// like inquiry scan, but within the device's own page set.
inline RfChannel page_scan_channel(BdAddr self, std::uint32_t scan_phase) {
  return page_channel(self, scan_phase % kChannelsPerSet);
}

/// Predicts the index a paged device is listening on from the clock value
/// its FHS carried. An accurate estimate puts the pager on the right train
/// immediately (the spec's "page with clock estimate" fast path).
inline std::uint32_t predicted_page_index(std::uint32_t clock_estimate) {
  return (clock_estimate >> 12) & 0x1F;
}

}  // namespace bips::baseband
