// Shared radio channel with propagation range and collision handling.
//
// This is the reproduction of the paper's BlueHoc *extension*: "a mechanism
// for handling collisions that might arise during the establishment of a
// link". Delivery rule: a listener receives a packet iff
//
//   * it started listening on the packet's channel at or before the packet
//     began, and is still listening when the packet ends,
//   * the sender is within radio range, and
//   * no other in-range transmission overlapped the packet on the same
//     channel (unless near-far capture is enabled).
//
// Two slaves answering the same inquiry ID therefore destroy each other's
// FHS at the master -- the effect that caps first-cycle discovery in
// Figure 2.
//
// Scaling architecture (building-sized runs): every RF channel ever used is
// interned once into a ChannelState that owns that channel's listener index
// and its recent-transmission queue, so the hot paths cost one hash probe
// (transmit, start_listen) or none at all (stop_listen and delivery follow
// pointers carried by the listen slot / delivery closure). Listen state
// lives in a generation-tagged arena (ListenId = slot + generation, so a
// stale stop_listen is a true no-op), and each device carries its own
// listen list for O(its listens) teardown. A channel's listeners start as
// one flat vector -- a handful of scanners, scanned linearly -- and migrate
// one-way onto a coarse spatial grid over listener positions when the
// channel grows past ChannelConfig::grid_threshold. In-flight transmissions
// sit per channel in start-time order, so the collision-overlap check scans
// a bounded window instead of every recent transmission in the building.
// Candidate listeners are visited in registration order, which makes
// delivery (and thus RNG consumption) deterministic and independent of both
// hash-map iteration order and the flat/grid mode split.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/baseband/config.hpp"
#include "src/baseband/types.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/flat_map.hpp"
#include "src/util/geom.hpp"
#include "src/util/rng.hpp"

namespace bips::baseband {

using ListenId = std::uint64_t;
inline constexpr ListenId kNoListen = 0;

/// Channels within one hop-set namespace are indexed 0..31 (see RfChannel);
/// the channel intern table direct-indexes that range.
inline constexpr std::uint32_t kChannelIndexSpan = 32;

class RadioChannel;

/// A device attached to the radio channel. Implementations are the
/// controller state machines; the channel calls back on clean receptions.
class RadioDevice {
 public:
  virtual ~RadioDevice() = default;
  virtual BdAddr addr() const = 0;
  /// Physical position (metres); read at delivery time.
  virtual Vec2 position() const = 0;
  /// Radio range in metres (paper: ~10 m piconet radius).
  virtual double range_m() const = 0;
  /// Called on every clean packet reception while listening.
  virtual void on_packet(const Packet& p, RfChannel ch, SimTime end) = 0;

  /// Radio-on accounting hooks (energy model). The channel credits every
  /// transmission's air time and every listen's open duration. Concurrent
  /// listens accumulate independently (receiver-channel time, not wall
  /// time); the only device holding two listens at once is an inquiring
  /// master, which is mains-powered anyway. Default: not accounted.
  virtual void account_tx(Duration) {}
  virtual void account_listen(Duration) {}

 private:
  // Intrusive per-device listen index, maintained by RadioChannel: gives
  // stop_all_listens / listen_count O(own listens) cost with no hash map.
  friend class RadioChannel;
  std::vector<ListenId> active_listens_;
};

/// Per-listen reception callback; when provided it overrides the device's
/// on_packet, letting each protocol state machine own its listens.
using PacketHandler =
    std::function<void(const Packet& p, RfChannel ch, SimTime end)>;

class RadioChannel {
 public:
  RadioChannel(sim::Simulator& sim, Rng& rng, ChannelConfig cfg = {})
      : sim_(sim),
        rng_(rng),
        cfg_(cfg),
        c_transmissions_(&sim.obs().metrics.counter("radio.transmissions")),
        c_deliveries_(&sim.obs().metrics.counter("radio.deliveries")),
        c_collisions_(&sim.obs().metrics.counter("radio.collisions")),
        c_out_of_range_(&sim.obs().metrics.counter("radio.out_of_range")),
        c_dropped_per_(&sim.obs().metrics.counter("radio.dropped_per")) {}
  RadioChannel(const RadioChannel&) = delete;
  RadioChannel& operator=(const RadioChannel&) = delete;

  const ChannelConfig& config() const { return cfg_; }

  /// Starts a transmission on `ch` at the current simulated time; the packet
  /// occupies the air for p.duration(). A device may transmit while holding
  /// listens, but state machines never do (half-duplex radio).
  void transmit(RadioDevice* sender, RfChannel ch, Packet p);

  /// Begins listening on one channel; a device may hold several concurrent
  /// listens (an inquiring master watches both response channels of a TX
  /// slot). If `handler` is given it receives the packets; otherwise the
  /// device's on_packet does. On a grid-mode channel the listener is
  /// spatially indexed under its position at this instant (see
  /// ChannelConfig::grid_slack_m).
  ListenId start_listen(RadioDevice* d, RfChannel ch,
                        PacketHandler handler = nullptr);
  void stop_listen(ListenId id);
  /// Drops every listen a device holds; O(listens of that device).
  void stop_all_listens(RadioDevice* d);

  /// Number of listens currently registered for a device (test hook).
  std::size_t listen_count(const RadioDevice* d) const {
    return d->active_listens_.size();
  }

  /// Received signal strength at distance d: a log-distance path-loss model
  /// (class-2 TX power 0 dBm, exponent 2.5) plus Gaussian shadowing. The
  /// absolute calibration is immaterial; only the monotone distance
  /// relation matters (presence arbitration compares values).
  double rssi_dbm(double distance_m);

  /// Deprecated accessor shape kept for existing call sites; the counters
  /// live in the simulator's MetricsRegistry under "radio.*" and this
  /// struct is materialised from them on demand.
  struct Stats {
    std::uint64_t transmissions = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t collisions = 0;     // (listener, packet) pairs destroyed
    std::uint64_t out_of_range = 0;   // reached the exact range check, failed
    std::uint64_t dropped_per = 0;    // random packet-error losses
  };
  Stats stats() const {
    return Stats{c_transmissions_->value(), c_deliveries_->value(),
                 c_collisions_->value(), c_out_of_range_->value(),
                 c_dropped_per_->value()};
  }

 private:
  struct Transmission {
    RadioDevice* sender;
    RfChannel ch;
    SimTime start, end;
    Packet packet;
  };
  // One listen as stored in a channel's flat or per-cell index: enough
  // state to filter candidates without touching the arena. Vectors are
  // unsorted (removal is swap-and-pop); deliver() sorts the gathered
  // candidates by registration sequence, which arena slot reuse does not
  // preserve in the id itself.
  struct CellEntry {
    ListenId id;
    std::uint64_t seq;  // registration order, monotone across all listens
    RadioDevice* device;
    SimTime since;
  };
  // Transmissions overlapping the recent past on one channel, in start-time
  // order (simulation time is monotone, so push_back keeps it sorted).
  // std::deque: grows at the back, prunes at the front, and -- crucially --
  // pointers to elements survive both, so the delivery event can carry a
  // plain Transmission* instead of copying the packet into the closure.
  using TxQueue = std::deque<Transmission>;

  // Everything the channel knows about one RF channel, interned on first
  // use and never discarded (scanners revisit the same channels every
  // window; erase/insert churn would cost an allocation each way). Lives
  // behind a unique_ptr so listen slots and delivery events can hold the
  // address across channels_ rehashes.
  struct ChannelState {
    // Flat listener list (pre-migration). A channel serving one building
    // wing has a handful of listeners: a linear scan beats grid probes.
    std::vector<CellEntry> flat;
    // Spatial index, populated once the channel migrates: grid cell key ->
    // listeners registered under that cell. Emptied vectors are kept, which
    // is exactly the erase-free discipline FlatHashMap requires.
    FlatHashMap<std::vector<CellEntry>> cells;
    TxQueue recent;
    std::uint32_t listens = 0;  // across flat + cells
    // One-way flag: flips when `listens` first exceeds grid_threshold (and
    // the config enables the grid). Crowded channels stay grid-indexed.
    bool grid = false;
  };

  // Arena slot for one listen. `generation` advances when the listen stops
  // and when the slot is reused, so a stale ListenId can never act on a
  // later occupancy (stop_listen of a dead id is a true no-op).
  struct ListenSlot {
    RadioDevice* device = nullptr;  // null while the slot is free
    ChannelState* chan = nullptr;
    SimTime since;
    PacketHandler handler;   // may be empty -> device->on_packet
    std::uint64_t cell = 0;  // grid cell it is indexed under (grid mode)
    std::uint32_t generation = 0;
  };

  // A gathered listener, by arena slot: no handler copy during the gather
  // (the handler std::function is only copied for the rare candidate that
  // actually receives). Slots stopped while a delivery is in progress are
  // retired lazily (deferred_free_), so the slot's handler survives until
  // the snapshot is done even if an earlier candidate's handler stopped it.
  struct Candidate {
    RadioDevice* device;
    std::uint32_t slot;
  };

  // One namespace's 32 hop channels, direct-indexed. The inquiry set (ns 0)
  // is a member -- zero hash probes for all inquiry traffic; per-address
  // page namespaces intern through a map of these blocks, which stays small
  // (one entry per distinct paged address) and cache-resident.
  struct NsChannels {
    std::unique_ptr<ChannelState> ch[kChannelIndexSpan];
  };

  ChannelState& channel_state(RfChannel ch);
  void migrate_to_grid(ChannelState& cs);
  void deliver(ChannelState& cs, const Transmission& tx);
  void gather_candidates(const ChannelState& cs, const Transmission& tx);
  void prune(TxQueue& q, SimTime now);
  bool in_range(const RadioDevice* rx, const RadioDevice* tx) const;
  double tx_range(const RadioDevice* tx) const;
  std::uint64_t grid_cell(Vec2 pos) const;

  sim::Simulator& sim_;
  Rng& rng_;
  ChannelConfig cfg_;
  // Cached registry cells ("radio.*"); see stats().
  obs::Counter* c_transmissions_;
  obs::Counter* c_deliveries_;
  obs::Counter* c_collisions_;
  obs::Counter* c_out_of_range_;
  obs::Counter* c_dropped_per_;
  // Listen arena + free list (same slot/generation scheme as the event
  // kernel; footprint is the high-water mark of concurrent listens).
  std::vector<ListenSlot> lslots_;
  std::vector<std::uint32_t> lfree_;
  std::uint64_t next_listen_seq_ = 1;
  // Channel intern table, two-level: the inquiry namespace is a direct
  // member (no hashing for the bulk of the traffic), page namespaces map
  // through ns -> channel block.
  NsChannels inquiry_ns_;
  FlatHashMap<std::unique_ptr<NsChannels>> page_ns_;
  // Transmission bucket used when cross-set interference is enabled: every
  // transmission lands in one global queue (in start-time order, exactly
  // the old flat recent_ list), so the probabilistic cross-channel clash
  // check sees other hop sets *and* draws its random numbers in the same
  // order as the pre-bucketing implementation.
  TxQueue global_recent_;
  // Scratch buffers reused across deliveries (deliver never nests: handlers
  // run from the event loop and can only schedule, not deliver, packets).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> candidate_seqs_;
  std::vector<Candidate> candidates_;
  // Listen slots stopped while a delivery is running: their free-list push
  // (and handler teardown) waits until the delivery finishes, so snapshot
  // candidates can still reach their handler and no slot is reused
  // mid-delivery.
  bool in_delivery_ = false;
  std::vector<std::uint32_t> deferred_free_;
};

}  // namespace bips::baseband
