// Shared radio channel with propagation range and collision handling.
//
// This is the reproduction of the paper's BlueHoc *extension*: "a mechanism
// for handling collisions that might arise during the establishment of a
// link". Delivery rule: a listener receives a packet iff
//
//   * it started listening on the packet's channel at or before the packet
//     began, and is still listening when the packet ends,
//   * the sender is within radio range, and
//   * no other in-range transmission overlapped the packet on the same
//     channel (unless near-far capture is enabled).
//
// Two slaves answering the same inquiry ID therefore destroy each other's
// FHS at the master -- the effect that caps first-cycle discovery in
// Figure 2.
//
// Scaling architecture (building-sized runs): every RF channel ever used is
// interned once into a ChannelState that owns that channel's listener index
// and its recent-transmission queue, so the hot paths cost one hash probe
// (transmit, start_listen) or none at all (stop_listen and delivery follow
// pointers carried by the listen slot / delivery closure). Listen state
// lives in a generation-tagged arena (ListenId = slot + generation, so a
// stale stop_listen is a true no-op), and each device carries its own
// listen list for O(its listens) teardown. A channel's listeners start as
// one flat vector -- a handful of scanners, scanned linearly -- and migrate
// one-way onto a coarse spatial grid over listener positions when the
// channel grows past ChannelConfig::grid_threshold. In-flight transmissions
// sit per channel in start-time order, so the collision-overlap check scans
// a bounded window instead of every recent transmission in the building.
// Candidate listeners are visited in registration order, which makes
// delivery deterministic and independent of both hash-map iteration order
// and the flat/grid mode split; per-reception randomness is drawn from
// hash-derived streams keyed by (transmission, receiver), never from the
// shared generator, so one reception can never shift another's draws.
//
// The channel also maintains the occupancy index behind the virtual-slot
// fast-forward (DESIGN.md section 5c): per hop-set namespace it tracks the
// positions of *triggering* listeners (scan windows, armed backoff windows,
// response-exchange listens) plus transient holds covering committed
// response flights, and offers one-shot subscribe_occupancy() wakeups. A
// master whose channel set shows no trigger point within ff_radius() of it
// may park its slot drumming and advance closed-form; the index wakes it
// the instant that stops being safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/baseband/config.hpp"
#include "src/baseband/types.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/flat_map.hpp"
#include "src/util/geom.hpp"
#include "src/util/rng.hpp"

namespace bips::baseband {

using ListenId = std::uint64_t;
inline constexpr ListenId kNoListen = 0;

/// Channels within one hop-set namespace are indexed 0..31 (see RfChannel);
/// the channel intern table direct-indexes that range.
inline constexpr std::uint32_t kChannelIndexSpan = 32;

class RadioChannel;

/// A device attached to the radio channel. Implementations are the
/// controller state machines; the channel calls back on clean receptions.
class RadioDevice {
 public:
  virtual ~RadioDevice() = default;
  virtual BdAddr addr() const = 0;
  /// Physical position (metres); read at delivery time.
  virtual Vec2 position() const = 0;
  /// Radio range in metres (paper: ~10 m piconet radius).
  virtual double range_m() const = 0;
  /// Called on every clean packet reception while listening.
  virtual void on_packet(const Packet& p, RfChannel ch, SimTime end) = 0;

  /// Radio-on accounting hooks (energy model). The channel credits every
  /// transmission's air time and every listen's open duration. Concurrent
  /// listens accumulate independently (receiver-channel time, not wall
  /// time); the only device holding two listens at once is an inquiring
  /// master, which is mains-powered anyway. Default: not accounted.
  virtual void account_tx(Duration) {}
  virtual void account_listen(Duration) {}

 private:
  // Intrusive per-device listen index, maintained by RadioChannel: gives
  // stop_all_listens / listen_count O(own listens) cost with no hash map.
  friend class RadioChannel;
  std::vector<ListenId> active_listens_;
};

/// Per-listen reception callback; when provided it overrides the device's
/// on_packet, letting each protocol state machine own its listens.
using PacketHandler =
    std::function<void(const Packet& p, RfChannel ch, SimTime end)>;

/// How a listen participates in the occupancy index that drives idle
/// fast-forward (DESIGN.md section 5c).
///
///   kTriggering -- the listener is *initiating* state: an open scan window,
///     an armed backoff listen, a response-exchange listen. Its presence
///     means a parked master's drumming could become observable, so it
///     registers an occupancy trigger point and fires pending occupancy
///     subscriptions within ff_radius().
///   kPassive -- the listener is *reactive* state that only matters if a
///     triggering listener already brought the interaction about: a master's
///     own response-window listens. Passive listens never hold a master
///     awake (that would make every master's wakefulness depend on every
///     other master's, a fixpoint the closed-form skip cannot evaluate);
///     instead the scanner side covers the response flight with an
///     occupancy_hold().
enum class ListenKind : std::uint8_t { kTriggering, kPassive };

/// Handle for one occupancy subscription; 0 is never issued.
using OccupancySubId = std::uint64_t;
inline constexpr OccupancySubId kNoOccupancySub = 0;

/// Fired (once) when a triggering listener or hold appears within
/// ff_radius() of the subscription point, with the current simulated time.
/// Runs at the end of the registration that satisfied it; the callback must
/// only schedule (arm a process at `now`), never transmit or listen
/// directly, so registration order stays the only order that matters.
using OccupancyCallback = std::function<void(SimTime)>;

class RadioChannel {
 public:
  RadioChannel(sim::Simulator& sim, Rng& rng, ChannelConfig cfg = {})
      : sim_(sim),
        rng_(rng),
        cfg_(cfg),
        // One up-front draw decorrelates the per-reception hash streams (see
        // deliver()) from everything else derived from the master seed.
        draw_seed_(rng.next_u64()),
        max_range_hw_(cfg.default_range_m),
        c_transmissions_(&sim.obs().metrics.counter("radio.transmissions")),
        c_deliveries_(&sim.obs().metrics.counter("radio.deliveries")),
        c_collisions_(&sim.obs().metrics.counter("radio.collisions")),
        c_out_of_range_(&sim.obs().metrics.counter("radio.out_of_range")),
        c_dropped_per_(&sim.obs().metrics.counter("radio.dropped_per")),
        c_occ_wakeups_(&sim.obs().metrics.counter("radio.occ_wakeups")) {}
  RadioChannel(const RadioChannel&) = delete;
  RadioChannel& operator=(const RadioChannel&) = delete;

  const ChannelConfig& config() const { return cfg_; }

  /// Starts a transmission on `ch` at the current simulated time; the packet
  /// occupies the air for p.duration(). A device may transmit while holding
  /// listens, but state machines never do (half-duplex radio).
  void transmit(RadioDevice* sender, RfChannel ch, Packet p);

  /// Begins listening on one channel; a device may hold several concurrent
  /// listens (an inquiring master watches both response channels of a TX
  /// slot). If `handler` is given it receives the packets; otherwise the
  /// device's on_packet does. On a grid-mode channel the listener is
  /// spatially indexed under its position at this instant (see
  /// ChannelConfig::grid_slack_m). A kTriggering listen (the default; every
  /// scanner-side listen is one) also registers an occupancy trigger point
  /// and fires matching occupancy subscriptions before returning.
  ListenId start_listen(RadioDevice* d, RfChannel ch,
                        PacketHandler handler = nullptr,
                        ListenKind kind = ListenKind::kTriggering);
  /// start_listen with an explicit registration time in the past: how a
  /// woken master reconstructs the response-window listens its skipped
  /// slots would have opened. Delivery/overlap semantics are exactly those
  /// of a listen opened at `since` (a packet that started after `since` and
  /// is still in flight will be delivered); the stop-side energy credit
  /// spans from `since` too. Requires since <= now.
  ListenId start_listen_backdated(RadioDevice* d, RfChannel ch, SimTime since,
                                  PacketHandler handler = nullptr,
                                  ListenKind kind = ListenKind::kPassive);
  void stop_listen(ListenId id);
  /// Drops every listen a device holds; O(listens of that device).
  void stop_all_listens(RadioDevice* d);

  // --- Occupancy index: who could possibly hear a drumming master --------
  //
  // Keyed per hop-set namespace (ns 0 = the shared inquiry set, one ns per
  // paged address). Trigger points are the kTriggering listens plus
  // explicit holds; a master parks only while no trigger point in its
  // namespace lies within ff_radius() of it, and is woken by a one-shot
  // subscription the instant one appears.

  /// Registers a transient trigger point with no listen attached: a scanner
  /// that has committed to transmitting a response keeps nearby masters in
  /// exact mode until the response's flight ends at `until`. Expires lazily.
  void occupancy_hold(RfChannel ch, Vec2 pos, SimTime until);
  /// True if any live trigger point in `ns` is within ff_radius() of `pos`.
  bool occupied(std::uint32_t ns, Vec2 pos);
  /// One-shot wakeup: `cb` fires when a trigger point appears within
  /// ff_radius() of `pos` in `ns` (or when ff_radius() itself grows, which
  /// invalidates every park decision). The caller checks occupied() first;
  /// an already-satisfied subscription does not fire retroactively.
  OccupancySubId subscribe_occupancy(std::uint32_t ns, Vec2 pos,
                                     OccupancyCallback cb);
  /// Cancels a pending subscription (no-op if it already fired).
  void unsubscribe_occupancy(std::uint32_t ns, OccupancySubId id);
  /// Radius of the park predicate: 2 * (largest transmit range any device
  /// has shown) + ChannelConfig::ff_slack_m. The factor 2 closes the
  /// interference chain -- a skipped transmission can only matter through a
  /// victim listener within one range of both the parked master and the
  /// interfering/receiving party (DESIGN.md section 5c).
  double ff_radius() const {
    return ff_radius_for(max_range_hw_, cfg_.ff_slack_m);
  }
  /// The ff_radius convention as a pure function, shared with the sharded
  /// kernel: a shard's seam margin uses the same 2 * range + slack rule, so
  /// "far enough from the seam to ignore the other side" and "far enough
  /// from every trigger point to park" are one invariant.
  static double ff_radius_for(double range_highwater_m, double slack_m) {
    return 2.0 * range_highwater_m + slack_m;
  }

  /// Number of listens currently registered for a device (test hook).
  std::size_t listen_count(const RadioDevice* d) const {
    return d->active_listens_.size();
  }

  /// Received signal strength at distance d: a log-distance path-loss model
  /// (class-2 TX power 0 dBm, exponent 2.5) plus Gaussian shadowing. The
  /// absolute calibration is immaterial; only the monotone distance
  /// relation matters (presence arbitration compares values). This overload
  /// draws its shadowing noise from the shared stream (model probing /
  /// tests); delivered packets use the per-reception hash stream instead.
  double rssi_dbm(double distance_m);

  // Traffic counters live in the simulator's MetricsRegistry under
  // "radio.*" (transmissions, deliveries, collisions, out_of_range,
  // dropped_per, occ_wakeups); read them via
  // sim.obs().metrics.counter_value("radio.<name>").

 private:
  struct Transmission {
    RadioDevice* sender;
    RfChannel ch;
    SimTime start, end;
    Packet packet;
  };
  // One listen as stored in a channel's flat or per-cell index: enough
  // state to filter candidates without touching the arena. Vectors are
  // unsorted (removal is swap-and-pop); deliver() sorts the gathered
  // candidates by registration sequence, which arena slot reuse does not
  // preserve in the id itself.
  struct CellEntry {
    ListenId id;
    std::uint64_t seq;  // registration order, monotone across all listens
    RadioDevice* device;
    SimTime since;
  };
  // Transmissions overlapping the recent past on one channel, in start-time
  // order (simulation time is monotone, so push_back keeps it sorted).
  // std::deque: grows at the back, prunes at the front, and -- crucially --
  // pointers to elements survive both, so the delivery event can carry a
  // plain Transmission* instead of copying the packet into the closure.
  using TxQueue = std::deque<Transmission>;

  // Everything the channel knows about one RF channel, interned on first
  // use and never discarded (scanners revisit the same channels every
  // window; erase/insert churn would cost an allocation each way). Lives
  // behind a unique_ptr so listen slots and delivery events can hold the
  // address across channels_ rehashes.
  struct ChannelState {
    // Flat listener list (pre-migration). A channel serving one building
    // wing has a handful of listeners: a linear scan beats grid probes.
    std::vector<CellEntry> flat;
    // Spatial index, populated once the channel migrates: grid cell key ->
    // listeners registered under that cell. Emptied vectors are kept, which
    // is exactly the erase-free discipline FlatHashMap requires.
    FlatHashMap<std::vector<CellEntry>> cells;
    TxQueue recent;
    std::uint32_t listens = 0;  // across flat + cells
    // One-way flag: flips when `listens` first exceeds grid_threshold (and
    // the config enables the grid). Crowded channels stay grid-indexed.
    bool grid = false;
  };

  // Arena slot for one listen. `generation` advances when the listen stops
  // and when the slot is reused, so a stale ListenId can never act on a
  // later occupancy (stop_listen of a dead id is a true no-op).
  struct ListenSlot {
    RadioDevice* device = nullptr;  // null while the slot is free
    ChannelState* chan = nullptr;
    SimTime since;
    PacketHandler handler;   // may be empty -> device->on_packet
    std::uint64_t cell = 0;  // grid cell it is indexed under (grid mode)
    std::uint32_t generation = 0;
    std::uint32_t ns = 0;    // hop-set namespace (occupancy bookkeeping)
    ListenKind kind = ListenKind::kTriggering;
  };

  // --- Occupancy bookkeeping (one block per hop-set namespace) -----------
  // A trigger point is either a live kTriggering listen (until ==
  // SimTime::max(), removed by stop_listen) or a hold (expires lazily at
  // `until`). Subscribers are kept in subscription order, which is the
  // order callbacks fire in -- deterministic and independent of hash-map
  // layout.
  struct TriggerPoint {
    Vec2 pos;
    SimTime until;
    ListenId listen = kNoListen;  // kNoListen for holds
  };
  struct OccSubscriber {
    OccupancySubId id;
    Vec2 pos;
    OccupancyCallback cb;
  };
  struct Occupancy {
    std::vector<TriggerPoint> points;
    std::vector<OccSubscriber> subs;
  };

  // A gathered listener, by arena slot: no handler copy during the gather
  // (the handler std::function is only copied for the rare candidate that
  // actually receives). Slots stopped while a delivery is in progress are
  // retired lazily (deferred_free_), so the slot's handler survives until
  // the snapshot is done even if an earlier candidate's handler stopped it.
  struct Candidate {
    RadioDevice* device;
    std::uint32_t slot;
  };

  // One namespace's 32 hop channels, direct-indexed. The inquiry set (ns 0)
  // is a member -- zero hash probes for all inquiry traffic; per-address
  // page namespaces intern through a map of these blocks, which stays small
  // (one entry per distinct paged address) and cache-resident.
  struct NsChannels {
    std::unique_ptr<ChannelState> ch[kChannelIndexSpan];
  };

  ChannelState& channel_state(RfChannel ch);
  void migrate_to_grid(ChannelState& cs);
  void deliver(ChannelState& cs, const Transmission& tx);
  void gather_candidates(const ChannelState& cs, const Transmission& tx);
  void prune(TxQueue& q, SimTime now);
  bool in_range(const RadioDevice* rx, const RadioDevice* tx) const;
  double tx_range(const RadioDevice* tx) const;
  std::uint64_t grid_cell(Vec2 pos) const;

  double rssi_dbm(double distance_m, Rng& rng) const;
  Occupancy& occupancy(std::uint32_t ns);
  /// Registers a trigger point and fires satisfied subscriptions in `ns`.
  void add_trigger(std::uint32_t ns, Vec2 pos, SimTime until, ListenId id);
  void remove_trigger(std::uint32_t ns, ListenId id);
  std::size_t live_subs() const;
  /// Tracks the largest transmit range seen; an increase re-fires every
  /// pending subscription (their park decisions used a smaller radius).
  void note_range(const RadioDevice* d);

  sim::Simulator& sim_;
  Rng& rng_;
  ChannelConfig cfg_;
  // Seed of the per-reception hash-derived draw streams (see deliver()).
  std::uint64_t draw_seed_;
  // High-water mark of tx_range() over every device that has transmitted or
  // listened; the ff_radius() base.
  double max_range_hw_;
  // Cached registry cells ("radio.*").
  obs::Counter* c_transmissions_;
  obs::Counter* c_deliveries_;
  obs::Counter* c_collisions_;
  obs::Counter* c_out_of_range_;
  obs::Counter* c_dropped_per_;
  obs::Counter* c_occ_wakeups_;
  // Listen arena + free list (same slot/generation scheme as the event
  // kernel; footprint is the high-water mark of concurrent listens).
  std::vector<ListenSlot> lslots_;
  std::vector<std::uint32_t> lfree_;
  std::uint64_t next_listen_seq_ = 1;
  // Channel intern table, two-level: the inquiry namespace is a direct
  // member (no hashing for the bulk of the traffic), page namespaces map
  // through ns -> channel block.
  NsChannels inquiry_ns_;
  FlatHashMap<std::unique_ptr<NsChannels>> page_ns_;
  // Transmission bucket used when cross-set interference is enabled: every
  // transmission lands in one global queue (in start-time order, exactly
  // the old flat recent_ list), so the probabilistic cross-channel clash
  // check sees other hop sets *and* draws its random numbers in the same
  // order as the pre-bucketing implementation.
  TxQueue global_recent_;
  // Occupancy blocks: inquiry namespace direct, page namespaces interned
  // (mirrors the channel table's two-level layout).
  Occupancy inquiry_occ_;
  FlatHashMap<std::unique_ptr<Occupancy>> page_occ_;
  std::uint64_t next_sub_id_ = 1;
  // Global subscription order, used only by the rare wake-everything path
  // (max-range increase) so even that fires deterministically; entries
  // whose subscription already fired or was cancelled are skipped lazily.
  std::vector<std::pair<std::uint32_t, OccupancySubId>> sub_order_;
  // Scratch for subscription firing (callbacks may re-subscribe).
  std::vector<OccupancyCallback> fired_cbs_;
  // Scratch buffers reused across deliveries (deliver never nests: handlers
  // run from the event loop and can only schedule, not deliver, packets).
  // Candidates order by (registration time, listener address, registration
  // seq). `since` first: a backdated reconstructed listen sorts exactly
  // where its exact-mode counterpart would have. The address tie-break
  // makes same-instant registrations by *different* devices order
  // identically in both modes even though their registering events may
  // interleave differently within the instant (a woken master's slot event
  // re-enters the FIFO at a different position than the exact path's
  // re-arm); one device's own same-instant listens keep their per-device
  // registration order via seq.
  struct OrderKey {
    SimTime since;
    std::uint64_t addr;
    std::uint64_t seq;
    std::uint32_t slot;
    bool operator<(const OrderKey& o) const {
      if (since != o.since) return since < o.since;
      if (addr != o.addr) return addr < o.addr;
      return seq < o.seq;
    }
  };
  std::vector<OrderKey> candidate_seqs_;
  std::vector<Candidate> candidates_;
  // Listen slots stopped while a delivery is running: their free-list push
  // (and handler teardown) waits until the delivery finishes, so snapshot
  // candidates can still reach their handler and no slot is reused
  // mid-delivery.
  bool in_delivery_ = false;
  std::vector<std::uint32_t> deferred_free_;
};

}  // namespace bips::baseband
