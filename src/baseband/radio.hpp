// Shared radio channel with propagation range and collision handling.
//
// This is the reproduction of the paper's BlueHoc *extension*: "a mechanism
// for handling collisions that might arise during the establishment of a
// link". Delivery rule: a listener receives a packet iff
//
//   * it started listening on the packet's channel at or before the packet
//     began, and is still listening when the packet ends,
//   * the sender is within radio range, and
//   * no other in-range transmission overlapped the packet on the same
//     channel (unless near-far capture is enabled).
//
// Two slaves answering the same inquiry ID therefore destroy each other's
// FHS at the master -- the effect that caps first-cycle discovery in
// Figure 2.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/baseband/config.hpp"
#include "src/baseband/types.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/geom.hpp"
#include "src/util/rng.hpp"

namespace bips::baseband {

/// A device attached to the radio channel. Implementations are the
/// controller state machines; the channel calls back on clean receptions.
class RadioDevice {
 public:
  virtual ~RadioDevice() = default;
  virtual BdAddr addr() const = 0;
  /// Physical position (metres); read at delivery time.
  virtual Vec2 position() const = 0;
  /// Radio range in metres (paper: ~10 m piconet radius).
  virtual double range_m() const = 0;
  /// Called on every clean packet reception while listening.
  virtual void on_packet(const Packet& p, RfChannel ch, SimTime end) = 0;

  /// Radio-on accounting hooks (energy model). The channel credits every
  /// transmission's air time and every listen's open duration. Concurrent
  /// listens accumulate independently (receiver-channel time, not wall
  /// time); the only device holding two listens at once is an inquiring
  /// master, which is mains-powered anyway. Default: not accounted.
  virtual void account_tx(Duration) {}
  virtual void account_listen(Duration) {}
};

using ListenId = std::uint64_t;
inline constexpr ListenId kNoListen = 0;

/// Per-listen reception callback; when provided it overrides the device's
/// on_packet, letting each protocol state machine own its listens.
using PacketHandler =
    std::function<void(const Packet& p, RfChannel ch, SimTime end)>;

class RadioChannel {
 public:
  RadioChannel(sim::Simulator& sim, Rng& rng, ChannelConfig cfg = {})
      : sim_(sim), rng_(rng), cfg_(cfg) {}
  RadioChannel(const RadioChannel&) = delete;
  RadioChannel& operator=(const RadioChannel&) = delete;

  const ChannelConfig& config() const { return cfg_; }

  /// Starts a transmission on `ch` at the current simulated time; the packet
  /// occupies the air for p.duration(). A device may transmit while holding
  /// listens, but state machines never do (half-duplex radio).
  void transmit(RadioDevice* sender, RfChannel ch, Packet p);

  /// Begins listening on one channel; a device may hold several concurrent
  /// listens (an inquiring master watches both response channels of a TX
  /// slot). If `handler` is given it receives the packets; otherwise the
  /// device's on_packet does.
  ListenId start_listen(RadioDevice* d, RfChannel ch,
                        PacketHandler handler = nullptr);
  void stop_listen(ListenId id);
  void stop_all_listens(RadioDevice* d);

  /// Number of listens currently registered for a device (test hook).
  std::size_t listen_count(const RadioDevice* d) const;

  /// Received signal strength at distance d: a log-distance path-loss model
  /// (class-2 TX power 0 dBm, exponent 2.5) plus Gaussian shadowing. The
  /// absolute calibration is immaterial; only the monotone distance
  /// relation matters (presence arbitration compares values).
  double rssi_dbm(double distance_m);

  struct Stats {
    std::uint64_t transmissions = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t collisions = 0;     // (listener, packet) pairs destroyed
    std::uint64_t out_of_range = 0;   // skipped: sender too far
    std::uint64_t dropped_per = 0;    // random packet-error losses
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Transmission {
    RadioDevice* sender;
    RfChannel ch;
    SimTime start, end;
    Packet packet;
  };
  struct Listen {
    RadioDevice* device;
    RfChannel ch;
    SimTime since;
    PacketHandler handler;  // may be empty -> device->on_packet
  };

  void deliver(const Transmission& tx);
  void prune(SimTime now);
  bool in_range(const RadioDevice* rx, const RadioDevice* tx) const;

  sim::Simulator& sim_;
  Rng& rng_;
  ChannelConfig cfg_;
  Stats stats_;
  ListenId next_listen_ = 1;
  std::unordered_map<ListenId, Listen> listens_;
  std::vector<Transmission> recent_;  // pruned lazily
};

}  // namespace bips::baseband
