// Fundamental Bluetooth baseband types: device addresses, logical RF
// channels, and packets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/time.hpp"

namespace bips::baseband {

/// 48-bit Bluetooth device address (BD_ADDR). The lower 48 bits are
/// significant; the top 16 are always zero.
class BdAddr {
 public:
  constexpr BdAddr() = default;
  constexpr explicit BdAddr(std::uint64_t raw) : raw_(raw & 0xFFFF'FFFF'FFFFull) {}

  constexpr std::uint64_t raw() const { return raw_; }
  constexpr bool is_null() const { return raw_ == 0; }
  constexpr auto operator<=>(const BdAddr&) const = default;

  /// Formats as the conventional "aa:bb:cc:dd:ee:ff".
  std::string to_string() const;

 private:
  std::uint64_t raw_ = 0;
};

/// Logical RF channel. Inquiry uses the GIAC-derived 32-channel set
/// (namespace 0, index 0..31); each paged address gets its own 32-channel
/// page set (namespace = hash of the address). Physically these sets overlap
/// in the 79-channel ISM band, but cross-procedure collisions are rare enough
/// that BIPS treats the namespaces as disjoint (documented in DESIGN.md).
struct RfChannel {
  std::uint32_t ns = 0;     // 0 = inquiry (GIAC); otherwise page namespace
  std::uint32_t index = 0;  // 0..31 within the set

  constexpr bool operator==(const RfChannel&) const = default;
};

enum class PacketType : std::uint8_t {
  kId,        // 68 us identity packet carrying an access code
  kFhs,       // 366 us frequency-hop-synchronisation packet
  kPoll,      // master keep-alive
  kNull,      // slave keep-alive
  kAclData,   // payload-bearing packet (connection state)
};

/// Over-the-air packet. Small value type; payload bytes for ACL data live in
/// the link layer, not here (the channel only needs timing + identity).
struct Packet {
  PacketType type = PacketType::kId;
  BdAddr sender;         // who transmitted (null in a real ID packet; kept
                         // here for bookkeeping only -- receivers of kId must
                         // not read it, mirroring the real anonymity of IDs)
  BdAddr access_code;    // GIAC (null) for inquiry IDs; target for page IDs
  std::uint32_t clock = 0;  // CLKN sample carried by FHS packets
  /// Receive-side metadata, stamped by the channel into the delivered copy
  /// (meaningless on the transmit side): received signal strength from the
  /// log-distance path-loss model plus shadowing noise.
  double rssi_dbm = 0.0;

  /// On-air duration by packet type.
  Duration duration() const {
    switch (type) {
      case PacketType::kId: return Duration::micros(68);
      case PacketType::kFhs: return Duration::micros(366);
      case PacketType::kPoll:
      case PacketType::kNull: return Duration::micros(126);
      case PacketType::kAclData: return Duration::micros(366);
    }
    return Duration::micros(68);
  }
};

/// What a master learns from one inquiry response.
struct InquiryResponse {
  BdAddr addr;              // responder's BD_ADDR (from the FHS)
  std::uint32_t clock = 0;  // responder's native clock (for fast paging)
  SimTime received_at;      // when the FHS reached the master
  double rssi_dbm = 0.0;    // signal strength of the FHS (proximity hint)
};

}  // namespace bips::baseband

template <>
struct std::hash<bips::baseband::BdAddr> {
  std::size_t operator()(const bips::baseband::BdAddr& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.raw());
  }
};
