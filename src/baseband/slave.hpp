// Slave controller: the handheld's Bluetooth stack.
//
// Composes the inquiry scanner, the page scanner and the ACL link the way
// the paper's client is programmed (section 4.1): "the slave alternates the
// periods of inquiry scan and page scan" -- the two scan schedules share the
// interval and run half an interval out of phase, each with the default
// 11.25 ms window. While connected the device stops scanning (it is being
// tracked through the link); scanning resumes automatically on disconnect.
#pragma once

#include <functional>

#include "src/baseband/config.hpp"
#include "src/baseband/device.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/baseband/paging.hpp"
#include "src/baseband/piconet.hpp"

namespace bips::baseband {

struct SlaveConfig {
  ScanConfig inquiry_scan;
  ScanConfig page_scan;
  BackoffConfig backoff;
  /// Keep scanning while connected (off per the 1.1-era single-role parts
  /// the paper used).
  bool scan_while_connected = false;
};

class SlaveController {
 public:
  /// The slave was paged and is now synchronised with `master`; the owner
  /// must attach link() to that master's piconet.
  using ConnectedCallback =
      std::function<void(BdAddr master, std::uint32_t master_clock,
                         SimTime when)>;
  using DisconnectedCallback = std::function<void()>;

  SlaveController(sim::Simulator& sim, RadioChannel& radio, BdAddr addr,
                  Rng rng, SlaveConfig cfg = {}, Vec2 pos = {},
                  double range_m = 0.0);

  Device& device() { return dev_; }
  const Device& device() const { return dev_; }
  InquiryScanner& inquiry_scanner() { return inquiry_scan_; }
  PageScanner& page_scanner() { return page_scan_; }
  SlaveLink& link() { return link_; }
  const SlaveConfig& config() const { return cfg_; }

  void set_on_connected(ConnectedCallback cb) { on_connected_ = std::move(cb); }
  void set_on_disconnected(DisconnectedCallback cb) {
    on_disconnected_ = std::move(cb);
  }

  /// Starts both scan schedules, alternating: inquiry scan at a random
  /// phase p, page scan at p + interval/2.
  void start();
  void stop();
  bool connected() const { return link_.connected(); }

 private:
  void handle_connected(BdAddr master, std::uint32_t clock, SimTime when);
  void handle_disconnected();

  Device dev_;
  SlaveConfig cfg_;
  InquiryScanner inquiry_scan_;
  PageScanner page_scan_;
  SlaveLink link_;
  ConnectedCallback on_connected_;
  DisconnectedCallback on_disconnected_;
  bool started_ = false;
};

}  // namespace bips::baseband
