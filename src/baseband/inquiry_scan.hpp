// Slave-side inquiry-scan state machine.
//
// Protocol (Bluetooth 1.1, the behaviour behind both Table 1 and Figure 2):
//
//   1. Periodically (every T_inquiry_scan, default 1.28 s) the slave opens a
//      listening window of T_w_inquiry_scan (default 11.25 ms) on its
//      current scan channel.
//   2. On hearing a first ID it stops listening and sleeps a random backoff
//      of uniform[0, max_slots] slots (default 0..1023 -> mean 0.32 s).
//   3. When the backoff expires it *immediately* re-enters the inquiry-scan
//      substate for one bonus window; an actively inquiring master lands
//      the awaited second ID within one train sweep, so the response goes
//      out 625 us after that ID began. If the master has meanwhile stopped
//      inquiring, the armed state persists across the regular window
//      schedule (the radio does not stay on). The immediate re-entry is the
//      spec's behaviour and is what makes the paper's same-train average
//      1.28 + 0.32 + epsilon seconds rather than a full extra interval.
//   4. After responding it re-arms a fresh backoff and keeps responding
//      (configurable), so responses destroyed by collisions are retried.
//
// The scan channel advances across windows according to ScanChannelMode;
// see config.hpp for why kStickyTrain reproduces the hardware's persistent
// same/different-train alignment.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/baseband/config.hpp"
#include "src/baseband/device.hpp"
#include "src/baseband/hopping.hpp"
#include "src/sim/simulator.hpp"

namespace bips::baseband {

class InquiryScanner {
 public:
  /// Called right after the FHS response is put on the air.
  using ResponseSentCallback = std::function<void(SimTime when)>;

  InquiryScanner(Device& dev, ScanConfig scan, BackoffConfig backoff);
  ~InquiryScanner() { stop(); }
  InquiryScanner(const InquiryScanner&) = delete;
  InquiryScanner& operator=(const InquiryScanner&) = delete;

  /// Fixes the scan channel used by the first window (and hence the train,
  /// under kStickyTrain). Must be called before start(). Without this the
  /// channel is drawn uniformly from 0..31 (the ~50/50 train split the
  /// paper observes).
  void set_initial_channel(std::uint32_t index);

  void set_on_response_sent(ResponseSentCallback cb) {
    on_response_sent_ = std::move(cb);
  }

  /// Starts the periodic scan schedule. The first window opens after a
  /// random phase in [0, interval) unless a phase is given.
  void start();
  void start_with_phase(Duration phase);
  void stop();

  bool running() const { return running_; }
  /// Train of the channel the *next* window will listen on.
  Train current_train() const { return train_of(channel_for_window(window_index_)); }
  /// True while sleeping off a backoff.
  bool in_backoff() const { return backoff_pending_; }

  struct Stats {
    std::uint64_t windows_opened = 0;
    std::uint64_t ids_heard = 0;
    std::uint64_t backoffs = 0;
    std::uint64_t fhs_sent = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::uint32_t channel_for_window(std::uint64_t window_index) const;
  void open_window();
  void close_window();
  void interlace_retune();
  void begin_listen(std::uint32_t channel_index);
  void end_listen();
  void on_id(const Packet& p, RfChannel ch, SimTime end);
  void send_response();
  void arm_backoff();
  void backoff_expired();

  Device& dev_;
  ScanConfig scan_;
  BackoffConfig backoff_;
  ResponseSentCallback on_response_sent_;

  bool running_ = false;
  std::uint32_t initial_channel_ = 0;
  bool initial_channel_set_ = false;

  std::uint64_t window_index_ = 0;
  bool window_open_ = false;
  std::uint32_t window_channel_ = 0;

  bool armed_ = false;            // heard first ID & finished backoff
  bool backoff_pending_ = false;  // sleeping; windows are skipped
  ListenId listen_ = kNoListen;
  // Response channel of the armed exchange (set when the second ID is
  // heard, read by the response process).
  std::uint32_t response_index_ = 0;

  sim::Process window_open_proc_;
  sim::Process window_close_proc_;
  sim::Process interlace_proc_;
  sim::Process backoff_proc_;
  sim::Process armed_close_proc_;
  sim::Process response_proc_;

  Stats stats_;
};

}  // namespace bips::baseband
