#include "src/baseband/inquiry.hpp"

#include "src/util/log.hpp"

namespace bips::baseband {

namespace {
/// A slave transmits its FHS 625 us after the start of the ID it heard; the
/// FHS lasts 366 us, so the response to the second ID of a TX slot ends
/// 1303.5 us after the slot began. Closing the response listens a hair later
/// keeps that reception alive without bleeding into the following RX slot.
constexpr Duration kResponseListenSpan = Duration::micros(1310);
}  // namespace

Inquirer::Inquirer(Device& dev, InquiryConfig cfg, ResponseCallback on_response)
    : dev_(dev),
      cfg_(cfg),
      on_response_(std::move(on_response)),
      slot_proc_(dev.sim(), [this] { tx_slot(); }),
      id2_proc_(dev.sim(), [this] { second_id(); }),
      close_procs_{{dev.sim(), [this] { close_pair(0); }},
                   {dev.sim(), [this] { close_pair(1); }}} {
  BIPS_ASSERT(cfg_.train_repetitions > 0);
}

void Inquirer::start() {
  if (active_) return;
  active_ = true;
  train_ = cfg_.starting_train;
  reps_ = 0;
  tx_slot_ = 0;
  seen_.clear();
  id_packet_ = Packet{};
  id_packet_.type = PacketType::kId;
  id_packet_.sender = dev_.addr();
  id_packet_.access_code = BdAddr();  // GIAC: anonymous general inquiry
  slot_proc_.call_at(dev_.clock().next_even_slot(dev_.sim().now()));
}

void Inquirer::stop() {
  if (!active_) return;
  active_ = false;
  slot_proc_.cancel();
  id2_proc_.cancel();
  close_procs_[0].cancel();
  close_procs_[1].cancel();
  close_pair(0);
  close_pair(1);
}

void Inquirer::tx_slot() {
  if (!active_) return;
  const SimTime t0 = dev_.sim().now();

  const std::uint32_t ch1 = inquiry_tx_channel(train_, tx_slot_, 0);
  second_channel_ = inquiry_tx_channel(train_, tx_slot_, 1);

  // First ID now, second one half-slot later.
  dev_.radio().transmit(&dev_, inquiry_channel(ch1), id_packet_);
  ++stats_.ids_sent;
  id2_proc_.call_after(kHalfSlot);

  // Listen for FHS responses on both paired response channels. The listens
  // open now (before any response can start) and close after the span of
  // the second possible response.
  auto handler = [this](const Packet& p, RfChannel, SimTime end) {
    on_fhs(p, end);
  };
  ListenId* pair = open_pairs_[close_rotor_];
  pair[0] = dev_.radio().start_listen(&dev_, inquiry_response_channel(ch1),
                                      handler);
  pair[1] = dev_.radio().start_listen(
      &dev_, inquiry_response_channel(second_channel_), handler);
  close_procs_[close_rotor_].call_at(t0 + kResponseListenSpan);
  close_rotor_ ^= 1;

  advance_phase();
  slot_proc_.call_at(t0 + 2 * kSlot);
}

void Inquirer::second_id() {
  if (!active_) return;
  dev_.radio().transmit(&dev_, inquiry_channel(second_channel_), id_packet_);
  ++stats_.ids_sent;
}

void Inquirer::close_pair(int k) {
  for (ListenId& id : open_pairs_[k]) {
    dev_.radio().stop_listen(id);
    id = kNoListen;
  }
}

void Inquirer::advance_phase() {
  if (++tx_slot_ < kTrainTxSlots) return;
  tx_slot_ = 0;
  if (++reps_ < cfg_.train_repetitions) return;
  reps_ = 0;
  if (cfg_.switch_trains) {
    train_ = other_train(train_);
    ++stats_.train_switches;
  }
}

void Inquirer::on_fhs(const Packet& p, SimTime end) {
  if (p.type != PacketType::kFhs) return;
  ++stats_.fhs_received;
  if (!seen_.insert(p.sender).second) return;  // duplicate this session
  ++stats_.unique_responses;
  dev_.sim().obs().tracer.emit(end, obs::TraceKind::kInquiryResp,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               p.sender.raw(), 0, p.rssi_dbm);
  BIPS_TRACE(end, "inquirer %s: FHS from %s", dev_.addr().to_string().c_str(),
             p.sender.to_string().c_str());
  if (on_response_) {
    on_response_(InquiryResponse{p.sender, p.clock, end, p.rssi_dbm});
  }
}

}  // namespace bips::baseband
