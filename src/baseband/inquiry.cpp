#include "src/baseband/inquiry.hpp"

#include "src/util/log.hpp"

namespace bips::baseband {

namespace {
/// A slave transmits its FHS 625 us after the start of the ID it heard; the
/// FHS lasts 366 us, so the response to the second ID of a TX slot ends
/// 1303.5 us after the slot began. Closing the response listens a hair later
/// keeps that reception alive without bleeding into the following RX slot.
constexpr Duration kResponseListenSpan = Duration::micros(1310);
}  // namespace

Inquirer::Inquirer(Device& dev, InquiryConfig cfg, ResponseCallback on_response)
    : dev_(dev),
      cfg_(cfg),
      on_response_(std::move(on_response)),
      slot_proc_(dev.sim(), [this] { tx_slot(); }),
      id2_proc_(dev.sim(), [this] { second_id(); }),
      close_procs_{{dev.sim(), [this] { close_pair(0); }},
                   {dev.sim(), [this] { close_pair(1); }}},
      vclock_(dev.sim(), 2 * kSlot),
      wake_proc_(dev.sim(), [this] { wake(); }) {
  BIPS_ASSERT(cfg_.train_repetitions > 0);
}

void Inquirer::start() {
  if (active_) return;
  active_ = true;
  exact_ = dev_.radio().config().exact_slots;
  train_ = cfg_.starting_train;
  reps_ = 0;
  tx_slot_ = 0;
  seen_.clear();
  id_packet_ = Packet{};
  id_packet_.type = PacketType::kId;
  id_packet_.sender = dev_.addr();
  id_packet_.access_code = BdAddr();  // GIAC: anonymous general inquiry
  slot_proc_.call_at(dev_.clock().next_even_slot(dev_.sim().now()));
}

void Inquirer::stop() {
  if (!active_) return;
  active_ = false;
  if (vclock_.parked()) retire_park(dev_.sim().now());
  wake_proc_.cancel();
  slot_proc_.cancel();
  id2_proc_.cancel();
  close_procs_[0].cancel();
  close_procs_[1].cancel();
  close_pair(0);
  close_pair(1);
}

void Inquirer::tx_slot() {
  if (!active_) return;
  const SimTime t0 = dev_.sim().now();

  // Virtual-slot park: with no triggering listener in reach on the inquiry
  // set, nothing this (or any following idle) slot transmits can be heard
  // or interfere with anything observable -- skip ahead. The pending
  // close_procs_ of the previous slots keep running: their listens are real
  // and close on their own schedule.
  if (!exact_ && !dev_.radio().occupied(0, dev_.position())) {
    park(t0);
    return;
  }

  const std::uint32_t ch1 = inquiry_tx_channel(train_, tx_slot_, 0);
  second_channel_ = inquiry_tx_channel(train_, tx_slot_, 1);

  // First ID now, second one half-slot later.
  dev_.radio().transmit(&dev_, inquiry_channel(ch1), id_packet_);
  ++stats_.ids_sent;
  id2_proc_.call_after(kHalfSlot);

  // Listen for FHS responses on both paired response channels. The listens
  // open now (before any response can start) and close after the span of
  // the second possible response. Passive: a master's response windows
  // must not hold other masters awake (the scanner side covers committed
  // responses with occupancy holds instead).
  auto handler = [this](const Packet& p, RfChannel, SimTime end) {
    on_fhs(p, end);
  };
  ListenId* pair = open_pairs_[close_rotor_];
  pair[0] = dev_.radio().start_listen(&dev_, inquiry_response_channel(ch1),
                                      handler, ListenKind::kPassive);
  pair[1] = dev_.radio().start_listen(
      &dev_, inquiry_response_channel(second_channel_), handler,
      ListenKind::kPassive);
  close_procs_[close_rotor_].call_at(t0 + kResponseListenSpan);
  close_rotor_ ^= 1;

  advance_phase();
  slot_proc_.call_at(t0 + 2 * kSlot);
}

void Inquirer::park(SimTime t0) {
  vclock_.park(t0);
  occ_sub_ = dev_.radio().subscribe_occupancy(
      0, dev_.position(), [this](SimTime) {
        // Fired from inside a triggering registration: only schedule here.
        occ_sub_ = kNoOccupancySub;
        wake_proc_.call_at(dev_.sim().now());
      });
}

void Inquirer::wake() {
  if (!active_ || !vclock_.parked()) return;
  const SimTime now = dev_.sim().now();
  const SimTime parked_at = vclock_.parked_at();
  const auto wk = vclock_.wake(now);
  const SimTime resume = wk.resume;
  const std::uint64_t n = wk.skipped;

  if (n > 0) {
    // --- Credit the elided drumming exactly as the exact path would have
    // accrued it. Each skipped slot sent two 68 us IDs; the last one's
    // second ID may still lie in the future, in which case it is replayed
    // for real below (somebody can hear it now) instead of credited.
    const SimTime p1 = resume - 2 * kSlot;  // last skipped slot (k = n-1)
    const bool replay_second = p1 + kHalfSlot >= now;
    const std::uint64_t ids = 2 * n - (replay_second ? 1 : 0);
    stats_.ids_sent += ids - park_ids_credited_;  // minus lazy mid-park reads
    park_ids_credited_ = 0;
    dev_.account_tx(Duration::micros(68) * static_cast<std::int64_t>(ids) -
                    park_tx_credited_);
    park_tx_credited_ = Duration(0);

    // --- Reconstruct the response-listen pairs still open, backdated to
    // their slots; fully-elapsed windows are credited closed-form. At most
    // the last two slots' windows (span 1310 us < 2 x 1250 us) can still be
    // open, and their close rotors are provably free (any real pre-park
    // pair closed within 60 us of the park).
    std::uint64_t reconstructed = 0;
    auto handler = [this](const Packet& p, RfChannel, SimTime end) {
      on_fhs(p, end);
    };
    const auto reconstruct = [&](std::uint64_t k, SimTime slot_t) {
      const auto [tr, ts] = phase_at(k);
      const std::uint32_t c1 = inquiry_tx_channel(tr, ts, 0);
      const std::uint32_t c2 = inquiry_tx_channel(tr, ts, 1);
      ListenId* pair = open_pairs_[close_rotor_];
      BIPS_ASSERT(pair[0] == kNoListen && pair[1] == kNoListen);
      pair[0] = dev_.radio().start_listen_backdated(
          &dev_, inquiry_response_channel(c1), slot_t, handler,
          ListenKind::kPassive);
      pair[1] = dev_.radio().start_listen_backdated(
          &dev_, inquiry_response_channel(c2), slot_t, handler,
          ListenKind::kPassive);
      close_procs_[close_rotor_].call_at(slot_t + kResponseListenSpan);
      close_rotor_ ^= 1;
      ++reconstructed;
    };
    if (n >= 2) {
      const SimTime p2 = resume - 4 * kSlot;
      if (p2 + kResponseListenSpan > now) reconstruct(n - 2, p2);
    }
    reconstruct(n - 1, p1);  // now <= resume = p1 + 1250 < p1 + span: open
    // Reconstructed windows have t + span > now, so the lazy mid-park
    // crediting (strictly-closed windows only) never counted them: the
    // subtraction cannot go negative.
    dev_.account_listen(2 * kResponseListenSpan *
                            static_cast<std::int64_t>(n - reconstructed) -
                        park_listen_credited_);
    park_listen_credited_ = Duration(0);

    // --- Replay the still-future second ID of the last skipped slot on the
    // channel the closed-form phase assigns it.
    if (replay_second) {
      second_channel_ = inquiry_tx_channel(phase_at(n - 1).first,
                                           phase_at(n - 1).second, 1);
      id2_proc_.call_at(p1 + kHalfSlot);
    }

    advance_phase_by(n);
    dev_.sim().obs().tracer.emit(now, obs::TraceKind::kRadioFf,
                                 static_cast<std::uint32_t>(dev_.addr().raw()),
                                 n, static_cast<std::uint64_t>(
                                        (now - parked_at).ns()));
  }
  slot_proc_.call_at(resume);
}

void Inquirer::retire_park(SimTime now) {
  const SimTime parked_at = vclock_.parked_at();
  const std::uint64_t n = vclock_.retire(now);
  if (occ_sub_ != kNoOccupancySub) {
    dev_.radio().unsubscribe_occupancy(0, occ_sub_);
    occ_sub_ = kNoOccupancySub;
  }
  if (n == 0) return;
  // The exact path would have drummed n slots before this stop: credit the
  // IDs (the last slot's second ID only if its half-slot already passed --
  // a same-instant event loses to the earlier-scheduled stop) and the
  // listen time its pairs would have accrued before stop() closed them.
  const SimTime last = parked_at + (n - 1) * (2 * kSlot);
  const bool last_second = last + kHalfSlot < now;
  const std::uint64_t ids = 2 * n - (last_second ? 0 : 1);
  stats_.ids_sent += ids - park_ids_credited_;  // minus lazy mid-park reads
  park_ids_credited_ = 0;
  dev_.account_tx(Duration::micros(68) * static_cast<std::int64_t>(ids) -
                  park_tx_credited_);
  park_tx_credited_ = Duration(0);
  Duration listen_credit{0};
  const std::uint64_t full = n > 2 ? n - 2 : 0;
  listen_credit += 2 * kResponseListenSpan * static_cast<std::int64_t>(full);
  for (std::uint64_t k = full; k < n; ++k) {
    const SimTime t = parked_at + k * (2 * kSlot);
    const Duration open = now - t;
    listen_credit += 2 * (open < kResponseListenSpan ? open
                                                     : kResponseListenSpan);
  }
  // Lazy mid-park reads only credited windows already fully closed, each
  // at full span; the bulk figure includes those at full span too, so the
  // subtraction cannot go negative.
  dev_.account_listen(listen_credit - park_listen_credited_);
  park_listen_credited_ = Duration(0);
  advance_phase_by(n);
  dev_.sim().obs().tracer.emit(now, obs::TraceKind::kRadioFf,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               n, static_cast<std::uint64_t>(
                                      (now - parked_at).ns()));
}

void Inquirer::sync_park_stats() const {
  if (!vclock_.parked()) return;
  const SimTime now = dev_.sim().now();
  const std::uint64_t n = vclock_.elided_before(now);
  if (n == 0) return;
  // The crediting formula wake()/retire_park() apply when the park ends:
  // two IDs per elided slot, minus the last slot's second ID when its
  // half-slot has not struck yet. Monotone in `now`, so repeated reads only
  // ever add the delta since the previous one.
  const SimTime last = vclock_.parked_at() + (n - 1) * (2 * kSlot);
  const std::uint64_t ids = 2 * n - (last + kHalfSlot < now ? 0 : 1);
  stats_.ids_sent += ids - park_ids_credited_;
  park_ids_credited_ = ids;
  // The energy ledger rides the same lazy scheme, pinned to the exact
  // path's accounting instants: each ID at its transmit, each response
  // window at its close. Only windows *strictly* closed before `now` count
  // (a close event at exactly `now` has not fired yet under FIFO order);
  // still-open windows stay uncredited, matching EnergyMeter's "open
  // listens not yet credited" convention.
  const Duration tx = Duration::micros(68) * static_cast<std::int64_t>(ids);
  dev_.account_tx(tx - park_tx_credited_);
  park_tx_credited_ = tx;
  const std::int64_t fully_closed_span =
      (now - vclock_.parked_at() - kResponseListenSpan).ns();
  const std::int64_t step = (2 * kSlot).ns();
  std::uint64_t closed =
      fully_closed_span > 0
          ? static_cast<std::uint64_t>((fully_closed_span + step - 1) / step)
          : 0;
  if (closed > n) closed = n;
  const Duration listen =
      2 * kResponseListenSpan * static_cast<std::int64_t>(closed);
  dev_.account_listen(listen - park_listen_credited_);
  park_listen_credited_ = listen;
}

std::pair<Train, std::uint32_t> Inquirer::phase_at(std::uint64_t k) const {
  const std::uint64_t per_train =
      static_cast<std::uint64_t>(kTrainTxSlots) *
      static_cast<std::uint64_t>(cfg_.train_repetitions);
  std::uint64_t total = tx_slot_ +
                        static_cast<std::uint64_t>(kTrainTxSlots) *
                            static_cast<std::uint64_t>(reps_) +
                        k;
  Train t = train_;
  if (cfg_.switch_trains && ((total / per_train) & 1) != 0) t = other_train(t);
  return {t, static_cast<std::uint32_t>(total % kTrainTxSlots)};
}

void Inquirer::advance_phase_by(std::uint64_t n) {
  const std::uint64_t per_train =
      static_cast<std::uint64_t>(kTrainTxSlots) *
      static_cast<std::uint64_t>(cfg_.train_repetitions);
  std::uint64_t total = tx_slot_ +
                        static_cast<std::uint64_t>(kTrainTxSlots) *
                            static_cast<std::uint64_t>(reps_) +
                        n;
  const std::uint64_t crossings = total / per_train;
  if (cfg_.switch_trains) {
    stats_.train_switches += crossings;
    if ((crossings & 1) != 0) train_ = other_train(train_);
  }
  total %= per_train;
  reps_ = static_cast<int>(total / kTrainTxSlots);
  tx_slot_ = static_cast<std::uint32_t>(total % kTrainTxSlots);
}

void Inquirer::second_id() {
  if (!active_) return;
  dev_.radio().transmit(&dev_, inquiry_channel(second_channel_), id_packet_);
  ++stats_.ids_sent;
}

void Inquirer::close_pair(int k) {
  for (ListenId& id : open_pairs_[k]) {
    dev_.radio().stop_listen(id);
    id = kNoListen;
  }
}

void Inquirer::advance_phase() {
  if (++tx_slot_ < kTrainTxSlots) return;
  tx_slot_ = 0;
  if (++reps_ < cfg_.train_repetitions) return;
  reps_ = 0;
  if (cfg_.switch_trains) {
    train_ = other_train(train_);
    ++stats_.train_switches;
  }
}

void Inquirer::on_fhs(const Packet& p, SimTime end) {
  if (p.type != PacketType::kFhs) return;
  ++stats_.fhs_received;
  if (!seen_.insert(p.sender).second) return;  // duplicate this session
  ++stats_.unique_responses;
  dev_.sim().obs().tracer.emit(end, obs::TraceKind::kInquiryResp,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               p.sender.raw(), 0, p.rssi_dbm);
  BIPS_TRACE(end, "inquirer %s: FHS from %s", dev_.addr().to_string().c_str(),
             p.sender.to_string().c_str());
  if (on_response_) {
    on_response_(InquiryResponse{p.sender, p.clock, end, p.rssi_dbm});
  }
}

}  // namespace bips::baseband
