#include "src/baseband/inquiry.hpp"

#include "src/util/log.hpp"

namespace bips::baseband {

namespace {
/// A slave transmits its FHS 625 us after the start of the ID it heard; the
/// FHS lasts 366 us, so the response to the second ID of a TX slot ends
/// 1303.5 us after the slot began. Closing the response listens a hair later
/// keeps that reception alive without bleeding into the following RX slot.
constexpr Duration kResponseListenSpan = Duration::micros(1310);
}  // namespace

Inquirer::Inquirer(Device& dev, InquiryConfig cfg, ResponseCallback on_response)
    : dev_(dev), cfg_(cfg), on_response_(std::move(on_response)) {
  BIPS_ASSERT(cfg_.train_repetitions > 0);
}

void Inquirer::start() {
  if (active_) return;
  active_ = true;
  train_ = cfg_.starting_train;
  reps_ = 0;
  tx_slot_ = 0;
  seen_.clear();
  const SimTime first = dev_.clock().next_even_slot(dev_.sim().now());
  slot_event_ = dev_.sim().schedule_at(first, [this] { tx_slot(); });
}

void Inquirer::stop() {
  if (!active_) return;
  active_ = false;
  slot_event_.cancel();
  id2_event_.cancel();
  close_events_[0].cancel();
  close_events_[1].cancel();
  for (ListenId id : open_listens_) dev_.radio().stop_listen(id);
  open_listens_.clear();
}

void Inquirer::tx_slot() {
  if (!active_) return;
  const SimTime t0 = dev_.sim().now();

  const std::uint32_t ch1 = inquiry_tx_channel(train_, tx_slot_, 0);
  const std::uint32_t ch2 = inquiry_tx_channel(train_, tx_slot_, 1);

  Packet id;
  id.type = PacketType::kId;
  id.sender = dev_.addr();
  id.access_code = BdAddr();  // GIAC: anonymous general inquiry

  // First ID now, second one half-slot later.
  dev_.radio().transmit(&dev_, inquiry_channel(ch1), id);
  ++stats_.ids_sent;
  id2_event_ = dev_.sim().schedule(kHalfSlot, [this, ch2, id] {
    if (!active_) return;
    dev_.radio().transmit(&dev_, inquiry_channel(ch2), id);
    ++stats_.ids_sent;
  });

  // Listen for FHS responses on both paired response channels. The listens
  // open now (before any response can start) and close after the span of
  // the second possible response.
  auto handler = [this](const Packet& p, RfChannel, SimTime end) {
    on_fhs(p, end);
  };
  const ListenId la = dev_.radio().start_listen(
      &dev_, inquiry_response_channel(ch1), handler);
  const ListenId lb = dev_.radio().start_listen(
      &dev_, inquiry_response_channel(ch2), handler);
  open_listens_.insert(la);
  open_listens_.insert(lb);
  close_events_[close_rotor_] =
      dev_.sim().schedule_at(t0 + kResponseListenSpan, [this, la, lb] {
        dev_.radio().stop_listen(la);
        dev_.radio().stop_listen(lb);
        open_listens_.erase(la);
        open_listens_.erase(lb);
      });
  close_rotor_ ^= 1;

  advance_phase();
  slot_event_ = dev_.sim().schedule_at(t0 + 2 * kSlot, [this] { tx_slot(); });
}

void Inquirer::advance_phase() {
  if (++tx_slot_ < kTrainTxSlots) return;
  tx_slot_ = 0;
  if (++reps_ < cfg_.train_repetitions) return;
  reps_ = 0;
  if (cfg_.switch_trains) {
    train_ = other_train(train_);
    ++stats_.train_switches;
  }
}

void Inquirer::on_fhs(const Packet& p, SimTime end) {
  if (p.type != PacketType::kFhs) return;
  ++stats_.fhs_received;
  if (!seen_.insert(p.sender).second) return;  // duplicate this session
  ++stats_.unique_responses;
  BIPS_TRACE(end, "inquirer %s: FHS from %s", dev_.addr().to_string().c_str(),
             p.sender.to_string().c_str());
  if (on_response_) {
    on_response_(InquiryResponse{p.sender, p.clock, end, p.rssi_dbm});
  }
}

}  // namespace bips::baseband
