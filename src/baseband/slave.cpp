#include "src/baseband/slave.hpp"

namespace bips::baseband {

SlaveController::SlaveController(sim::Simulator& sim, RadioChannel& radio,
                                 BdAddr addr, Rng rng, SlaveConfig cfg,
                                 Vec2 pos, double range_m)
    : dev_(sim, radio, addr, std::move(rng), pos, range_m),
      cfg_(cfg),
      inquiry_scan_(dev_, cfg.inquiry_scan, cfg.backoff),
      page_scan_(dev_, cfg.page_scan),
      link_(dev_) {
  page_scan_.set_on_connected(
      [this](BdAddr master, std::uint32_t clock, SimTime when) {
        handle_connected(master, clock, when);
      });
  link_.set_on_disconnected([this] { handle_disconnected(); });
}

void SlaveController::start() {
  if (started_) return;
  started_ = true;
  const Duration interval = cfg_.inquiry_scan.interval;
  const Duration phase = Duration::nanos(static_cast<std::int64_t>(
      dev_.rng().uniform(static_cast<std::uint64_t>(interval.ns()))));
  inquiry_scan_.start_with_phase(phase);
  // Alternate: the page-scan window sits half an interval away from the
  // inquiry-scan window.
  page_scan_.start_with_phase(
      Duration::nanos((phase.ns() + cfg_.page_scan.interval.ns() / 2) %
                      cfg_.page_scan.interval.ns()));
}

void SlaveController::stop() {
  started_ = false;
  inquiry_scan_.stop();
  page_scan_.stop();
}

void SlaveController::handle_connected(BdAddr master, std::uint32_t clock,
                                       SimTime when) {
  // PageScanner stopped itself on connection; optionally silence inquiry
  // scan too while the link is up.
  if (!cfg_.scan_while_connected) inquiry_scan_.stop();
  if (on_connected_) on_connected_(master, clock, when);
}

void SlaveController::handle_disconnected() {
  if (on_disconnected_) on_disconnected_();
  if (!started_) return;
  // Become discoverable again.
  if (!inquiry_scan_.running()) inquiry_scan_.start();
  if (!page_scan_.running()) page_scan_.start();
}

}  // namespace bips::baseband
