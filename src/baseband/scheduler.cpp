#include "src/baseband/scheduler.hpp"

#include "src/util/log.hpp"

namespace bips::baseband {

MasterScheduler::MasterScheduler(Device& dev, SchedulerConfig cfg)
    : dev_(dev),
      cfg_(cfg),
      inquirer_(dev, cfg.inquiry,
                [this](const InquiryResponse& r) { handle_discovery(r); }),
      pager_(dev, cfg.page),
      piconet_(dev, cfg.piconet),
      c_cycles_(&dev.sim().obs().metrics.counter("sched.cycles")),
      cycle_proc_(dev.sim(),
                  [this] {
                    if (first_cycle_pending_) {
                      first_cycle_pending_ = false;
                    } else {
                      ++cycles_;
                      c_cycles_->inc();
                    }
                    begin_cycle();
                  }),
      inquiry_end_proc_(dev.sim(), [this] { end_inquiry_phase(); }) {
  BIPS_ASSERT(cfg_.inquiry_length > Duration(0));
  BIPS_ASSERT(cfg_.cycle_length > cfg_.inquiry_length);

  pager_.set_on_success([this](BdAddr slave, SimTime when) {
    if (on_connected_) on_connected_(slave, when);
    maybe_page_next();
  });
  pager_.set_on_failure([this](BdAddr slave) {
    queued_.erase(slave);  // allow a retry after the next discovery
    if (on_page_failed_) on_page_failed_(slave);
    maybe_page_next();
  });
}

void MasterScheduler::start() {
  if (running_) return;
  running_ = true;
  begin_cycle();
}

void MasterScheduler::start_after(Duration offset) {
  if (running_) return;
  BIPS_ASSERT(offset >= Duration(0));
  if (offset == Duration(0)) {
    start();
    return;
  }
  running_ = true;
  first_cycle_pending_ = true;
  cycle_proc_.call_after(offset);
}

void MasterScheduler::stop() {
  if (!running_) return;
  running_ = false;
  cycle_proc_.cancel();
  inquiry_end_proc_.cancel();
  inquirer_.stop();
  pager_.cancel();
  // Stopping outside an inquiry phase can reach a *quiesced* piconet;
  // resume() keeps the poll timer off in that case (the park stays live
  // and its lazy credit intact) instead of drumming against it.
  piconet_.resume();
  in_inquiry_ = false;
}

void MasterScheduler::begin_cycle() {
  if (!running_) return;
  in_inquiry_ = true;
  dev_.sim().obs().tracer.emit(dev_.sim().now(),
                               obs::TraceKind::kInquiryStart,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               cycles_);
  // The radio is single: dedicate it to discovery, suspend serving. The
  // pause also settles any supervised quiesce -- elided rounds credited,
  // last_reachable reconstructed, the pending deadline wake cancelled --
  // so the inquiry/serve alternation and the poll fast-forward compose.
  pager_.cancel();
  piconet_.pause();
  inquirer_.start();
  inquiry_end_proc_.call_after(cfg_.inquiry_length);
  cycle_proc_.call_after(cfg_.cycle_length);
}

void MasterScheduler::end_inquiry_phase() {
  if (!running_) return;
  in_inquiry_ = false;
  inquirer_.stop();
  piconet_.resume();
  if (on_inquiry_done_) on_inquiry_done_(dev_.sim().now());
  maybe_page_next();
}

void MasterScheduler::handle_discovery(const InquiryResponse& r) {
  BIPS_TRACE(dev_.sim().now(), "master %s discovered %s",
             dev_.addr().to_string().c_str(), r.addr.to_string().c_str());
  if (on_discovered_) on_discovered_(r);
  if (!cfg_.page_discovered) return;
  if (piconet_.has_slave(r.addr)) return;  // already being served
  if (pager_.active() && pager_.target() == r.addr) return;  // being paged
  if (queued_.insert(r.addr).second) page_queue_.push_back(r);
}

void MasterScheduler::maybe_page_next() {
  if (!running_ || in_inquiry_ || pager_.active()) return;
  while (!page_queue_.empty()) {
    const InquiryResponse r = page_queue_.front();
    page_queue_.pop_front();
    queued_.erase(r.addr);
    if (piconet_.has_slave(r.addr)) continue;
    pager_.page(r.addr, r.clock, r.received_at);
    return;
  }
}

}  // namespace bips::baseband
