#include "src/baseband/piconet.hpp"

#include <algorithm>

#include "src/util/assert.hpp"
#include "src/util/log.hpp"

namespace bips::baseband {

namespace {

/// Fragment framing: [u16 msg_id][u16 index][u16 total][payload bytes],
/// little-endian. Total message size is capped at 65535 fragments.
constexpr std::size_t kFragHeader = 6;

void put_u16(AclPayload& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const AclPayload& in, std::size_t pos) {
  return static_cast<std::uint16_t>(in[pos] |
                                    (static_cast<std::uint16_t>(in[pos + 1])
                                     << 8));
}

std::deque<AclPayload> fragment(std::uint16_t msg_id, const AclPayload& p,
                                std::size_t max_payload) {
  BIPS_ASSERT(max_payload > 0);
  const std::size_t total =
      p.empty() ? 1 : (p.size() + max_payload - 1) / max_payload;
  BIPS_ASSERT_MSG(total <= 0xFFFF, "ACL message too large to fragment");
  std::deque<AclPayload> frags;
  for (std::size_t i = 0; i < total; ++i) {
    AclPayload f;
    const std::size_t lo = i * max_payload;
    const std::size_t hi = std::min(p.size(), lo + max_payload);
    f.reserve(kFragHeader + (hi - lo));
    put_u16(f, msg_id);
    put_u16(f, static_cast<std::uint16_t>(i));
    put_u16(f, static_cast<std::uint16_t>(total));
    f.insert(f.end(), p.begin() + static_cast<std::ptrdiff_t>(lo),
             p.begin() + static_cast<std::ptrdiff_t>(hi));
    frags.push_back(std::move(f));
  }
  return frags;
}

}  // namespace

std::optional<AclPayload> PiconetMaster::Reassembler::push(
    const AclPayload& fragment) {
  BIPS_ASSERT_MSG(fragment.size() >= kFragHeader, "malformed ACL fragment");
  const std::uint16_t id = get_u16(fragment, 0);
  const std::uint16_t index = get_u16(fragment, 2);
  const std::uint16_t total = get_u16(fragment, 4);
  if (index == 0) {
    msg_id_ = id;
    next_index_ = 0;
    total_ = total;
    buf_.clear();
  }
  // The link is reliable and in-order; anything else is a logic error.
  BIPS_ASSERT_MSG(id == msg_id_ && index == next_index_ && total == total_,
                  "ACL fragment sequencing violated");
  buf_.insert(buf_.end(), fragment.begin() + kFragHeader, fragment.end());
  ++next_index_;
  if (next_index_ < total_) return std::nullopt;
  next_index_ = 0;
  total_ = 0;
  return std::move(buf_);
}

BdAddr SlaveLink::master_addr() const {
  return master_ != nullptr ? master_->device().addr() : BdAddr();
}

bool SlaveLink::parked() const {
  return master_ != nullptr && master_->is_parked(dev_.addr());
}

bool SlaveLink::send_to_master(AclPayload payload) {
  if (master_ == nullptr) return false;
  auto frags = fragment(next_msg_id_++, payload,
                        master_->config().max_fragment_payload);
  for (auto& f : frags) tx_queue_.push_back(std::move(f));
  master_->wake_polls();
  return true;
}

SlaveLink::~SlaveLink() {
  // Destroyed while still attached: erase this link from the master's
  // roster, or the master would later write through the dangling pointer
  // (poll loop, or its own destructor severing back-pointers).
  if (master_ == nullptr) return;
  master_->slaves_.erase(dev_.addr());
  if (master_->slaves_.empty()) {
    master_->sync_poll_stat();  // exact path polled until this instant
    master_->quiesced_ = false;
    master_->poll_timer_.stop();
  }
}

PiconetMaster::PiconetMaster(Device& dev, Config cfg)
    : dev_(dev),
      cfg_(cfg),
      poll_timer_(dev.sim(), cfg.poll_interval, [this] { poll_round(); }) {
  BIPS_ASSERT(cfg_.max_active_slaves >= 1 && cfg_.max_active_slaves <= 7);
  BIPS_ASSERT(cfg_.poll_interval > Duration(0));
}

PiconetMaster::~PiconetMaster() {
  // Sever back-pointers so SlaveLinks outliving this master do not dangle.
  for (auto& [addr, s] : slaves_) s.link->master_ = nullptr;
}

bool PiconetMaster::attach(SlaveLink& slave) {
  const BdAddr a = slave.dev_.addr();
  if (slaves_.count(a) != 0) return false;
  if (static_cast<int>(active_count()) >= cfg_.max_active_slaves) {
    ++stats_.attach_rejected_full;
    return false;
  }
  BIPS_ASSERT_MSG(slave.master_ == nullptr,
                  "slave already attached to another piconet");
  slave.master_ = this;
  const SimTime now = dev_.sim().now();
  SlaveState st;
  st.link = &slave;
  st.last_reachable = now;
  st.last_activity = now;
  slaves_.emplace(a, std::move(st));
  // While quiesced the loop is logically running (a fresh slave has no
  // pending traffic, so the no-op rounds stay elided on the same lattice).
  if (!poll_timer_.running() && !paused_ && !quiesced_) poll_timer_.start();
  return true;
}

std::size_t PiconetMaster::active_count() const {
  std::size_t n = 0;
  for (const auto& [a, s] : slaves_) {
    if (!s.parked) ++n;
  }
  return n;
}

bool PiconetMaster::is_parked(BdAddr a) const {
  const auto it = slaves_.find(a);
  return it != slaves_.end() && it->second.parked;
}

bool PiconetMaster::park(BdAddr a) {
  const auto it = slaves_.find(a);
  if (it == slaves_.end() || it->second.parked) return false;
  if (static_cast<int>(parked_count()) >= cfg_.max_parked_slaves) {
    return false;
  }
  it->second.parked = true;
  ++stats_.parks;
  return true;
}

bool PiconetMaster::unpark(BdAddr a) {
  const auto it = slaves_.find(a);
  if (it == slaves_.end() || !it->second.parked) return false;
  if (static_cast<int>(active_count()) >= cfg_.max_active_slaves) {
    return false;
  }
  it->second.parked = false;
  it->second.last_activity = dev_.sim().now();
  ++stats_.unparks;
  return true;
}

BdAddr PiconetMaster::park_idlest(BdAddr except) {
  BdAddr victim;
  SimTime oldest = SimTime::max();
  for (const auto& [a, s] : slaves_) {
    if (s.parked || a == except) continue;
    // Never park a slave with traffic in flight.
    if (!s.tx_queue.empty() || !s.link->tx_queue_.empty()) continue;
    if (s.last_activity < oldest) {
      oldest = s.last_activity;
      victim = a;
    }
  }
  if (!victim.is_null()) park(victim);
  return victim;
}

void PiconetMaster::detach(BdAddr addr) {
  const auto it = slaves_.find(addr);
  if (it == slaves_.end()) return;
  SlaveLink* link = it->second.link;
  slaves_.erase(it);
  link->master_ = nullptr;
  link->tx_queue_.clear();
  if (link->on_disconnected_) link->on_disconnected_();
  if (slaves_.empty()) {
    sync_poll_stat();
    quiesced_ = false;
    poll_timer_.stop();
  }
}

std::vector<BdAddr> PiconetMaster::slave_addrs() const {
  std::vector<BdAddr> out;
  out.reserve(slaves_.size());
  for (const auto& [a, s] : slaves_) out.push_back(a);
  return out;
}

bool PiconetMaster::send(BdAddr to, AclPayload payload) {
  const auto it = slaves_.find(to);
  if (it == slaves_.end()) return false;
  auto frags = fragment(it->second.next_msg_id++, payload,
                        cfg_.max_fragment_payload);
  for (auto& f : frags) it->second.tx_queue.push_back(std::move(f));
  wake_polls();
  return true;
}

void PiconetMaster::pause() {
  // The exact path keeps polling right up to the pause: settle any
  // quiescent credit before freezing.
  sync_poll_stat();
  quiesced_ = false;
  paused_ = true;
  poll_timer_.stop();
}

void PiconetMaster::wake_polls() {
  if (!quiesced_) return;
  sync_poll_stat();  // advances quiesce_round_ to the last elided round
  quiesced_ = false;
  // First fire = the next round of the exact path's lattice. (Never in the
  // past: sync_poll_stat leaves quiesce_round_ <= now < round + interval.)
  poll_timer_.start_after(quiesce_round_ + cfg_.poll_interval -
                          dev_.sim().now());
}

void PiconetMaster::sync_poll_stat() const {
  if (!quiesced_) return;
  const auto k = static_cast<std::int64_t>(
      (dev_.sim().now() - quiesce_round_).ns() / cfg_.poll_interval.ns());
  stats_.polls += static_cast<std::uint64_t>(k);
  quiesce_round_ = quiesce_round_ + k * cfg_.poll_interval;
}

void PiconetMaster::resume() {
  paused_ = false;
  if (!slaves_.empty()) poll_timer_.start();
}

bool PiconetMaster::slave_in_range(const SlaveState& s) const {
  const double range = dev_.range_m() > 0
                           ? dev_.range_m()
                           : dev_.radio().config().default_range_m;
  return distance_sq(dev_.position(), s.link->dev_.position()) <=
         range * range;
}

void PiconetMaster::poll_round() {
  ++stats_.polls;
  const SimTime now = dev_.sim().now();

  // Message callbacks may attach/detach slaves, so walk a snapshot of the
  // membership and re-look-up each slave.
  std::vector<BdAddr> lost;
  poll_snapshot_.clear();
  poll_snapshot_.reserve(slaves_.size());
  for (const auto& [a, s] : slaves_) poll_snapshot_.push_back(a);
  for (const BdAddr addr : poll_snapshot_) {
    const auto it = slaves_.find(addr);
    if (it == slaves_.end()) continue;  // detached by an earlier callback
    SlaveState& s = it->second;
    if (slave_in_range(s)) {
      s.last_reachable = now;
    } else {
      if (cfg_.supervision_timeout > Duration(0) &&
          now - s.last_reachable >= cfg_.supervision_timeout) {
        lost.push_back(addr);
      }
      continue;  // unreachable: traffic waits
    }

    if (s.parked) {
      // Parked slaves exchange no data; pending traffic in either
      // direction requests an unpark at the beacon (this poll round).
      const bool wants_traffic =
          !s.tx_queue.empty() || !s.link->tx_queue_.empty();
      if (!wants_traffic) continue;
      if (!unpark(addr)) {
        // No AM_ADDR free: rotate out a drained active slave so waiters
        // cycle through the active set across beacon rounds.
        if (park_idlest(addr).is_null()) continue;
        if (!unpark(addr)) continue;
      }
    }
    s.last_activity =
        (!s.tx_queue.empty() || !s.link->tx_queue_.empty()) ? now
                                                            : s.last_activity;

    // Exchange queued traffic: up to fragments_per_poll DM5 pieces per
    // direction per round (the slot budget of the poll), reassembled into
    // messages at the far end.
    for (int k = 0; k < cfg_.fragments_per_poll &&
                    slaves_.count(addr) != 0 && !s.tx_queue.empty();
         ++k) {
      AclPayload f = std::move(s.tx_queue.front());
      s.tx_queue.pop_front();
      ++stats_.fragments_delivered;
      if (auto msg = s.to_slave.push(f)) {
        ++stats_.messages_delivered;
        if (s.link->on_message_) s.link->on_message_(*msg);
      }
    }
    for (int k = 0; k < cfg_.fragments_per_poll &&
                    slaves_.count(addr) != 0 && !s.link->tx_queue_.empty();
         ++k) {
      AclPayload f = std::move(s.link->tx_queue_.front());
      s.link->tx_queue_.pop_front();
      ++stats_.fragments_delivered;
      if (auto msg = s.from_slave.push(f)) {
        ++stats_.messages_delivered;
        if (on_message_) on_message_(addr, *msg);
      }
    }
  }

  for (BdAddr addr : lost) {
    ++stats_.link_losses;
    BIPS_DEBUG(now, "piconet %s: supervision timeout for %s",
               dev_.addr().to_string().c_str(), addr.to_string().c_str());
    SlaveLink* link = slaves_.at(addr).link;
    slaves_.erase(addr);
    link->master_ = nullptr;
    link->tx_queue_.clear();
    if (link->on_disconnected_) link->on_disconnected_();
    if (on_link_loss_) on_link_loss_(addr);
  }
  if (slaves_.empty()) {
    poll_timer_.stop();
    return;
  }

  // Quiescent fast-forward: with supervision disabled the only duty of a
  // round is moving traffic, so a fully drained piconet stops the timer and
  // credits the elided no-op rounds closed-form (sync_poll_stat) when
  // traffic or an observer arrives.
  if (cfg_.supervision_timeout == Duration(0) &&
      !dev_.radio().config().exact_slots && poll_timer_.running()) {
    for (const auto& [a, s] : slaves_) {
      if (!s.tx_queue.empty() || !s.link->tx_queue_.empty()) return;
    }
    quiesced_ = true;
    quiesce_round_ = now;
    poll_timer_.stop();
  }
}

}  // namespace bips::baseband
