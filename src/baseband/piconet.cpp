#include "src/baseband/piconet.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.hpp"
#include "src/util/assert.hpp"
#include "src/util/log.hpp"

namespace bips::baseband {

namespace {

/// Fragment framing: [u16 msg_id][u16 index][u16 total][payload bytes],
/// little-endian. Total message size is capped at 65535 fragments.
constexpr std::size_t kFragHeader = 6;

void put_u16(AclPayload& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const AclPayload& in, std::size_t pos) {
  return static_cast<std::uint16_t>(in[pos] |
                                    (static_cast<std::uint16_t>(in[pos + 1])
                                     << 8));
}

std::deque<AclPayload> fragment(std::uint16_t msg_id, const AclPayload& p,
                                std::size_t max_payload) {
  BIPS_ASSERT(max_payload > 0);
  const std::size_t total =
      p.empty() ? 1 : (p.size() + max_payload - 1) / max_payload;
  BIPS_ASSERT_MSG(total <= 0xFFFF, "ACL message too large to fragment");
  std::deque<AclPayload> frags;
  for (std::size_t i = 0; i < total; ++i) {
    AclPayload f;
    const std::size_t lo = i * max_payload;
    const std::size_t hi = std::min(p.size(), lo + max_payload);
    f.reserve(kFragHeader + (hi - lo));
    put_u16(f, msg_id);
    put_u16(f, static_cast<std::uint16_t>(i));
    put_u16(f, static_cast<std::uint16_t>(total));
    f.insert(f.end(), p.begin() + static_cast<std::ptrdiff_t>(lo),
             p.begin() + static_cast<std::ptrdiff_t>(hi));
    frags.push_back(std::move(f));
  }
  return frags;
}

}  // namespace

std::optional<AclPayload> PiconetMaster::Reassembler::push(
    const AclPayload& fragment) {
  BIPS_ASSERT_MSG(fragment.size() >= kFragHeader, "malformed ACL fragment");
  const std::uint16_t id = get_u16(fragment, 0);
  const std::uint16_t index = get_u16(fragment, 2);
  const std::uint16_t total = get_u16(fragment, 4);
  if (index == 0) {
    msg_id_ = id;
    next_index_ = 0;
    total_ = total;
    buf_.clear();
  }
  // The link is reliable and in-order; anything else is a logic error.
  BIPS_ASSERT_MSG(id == msg_id_ && index == next_index_ && total == total_,
                  "ACL fragment sequencing violated");
  buf_.insert(buf_.end(), fragment.begin() + kFragHeader, fragment.end());
  ++next_index_;
  if (next_index_ < total_) return std::nullopt;
  next_index_ = 0;
  total_ = 0;
  return std::move(buf_);
}

BdAddr SlaveLink::master_addr() const {
  return master_ != nullptr ? master_->device().addr() : BdAddr();
}

bool SlaveLink::parked() const {
  return master_ != nullptr && master_->is_parked(dev_.addr());
}

bool SlaveLink::send_to_master(AclPayload payload) {
  if (master_ == nullptr) return false;
  auto frags = fragment(next_msg_id_++, payload,
                        master_->config().max_fragment_payload);
  for (auto& f : frags) tx_queue_.push_back(std::move(f));
  master_->wake_polls();
  return true;
}

SlaveLink::~SlaveLink() {
  // Destroyed while still attached: erase this link from the master's
  // roster, or the master would later write through the dangling pointer
  // (poll loop, or its own destructor severing back-pointers).
  if (master_ == nullptr) return;
  const auto it = master_->slaves_.find(dev_.addr());
  if (it != master_->slaves_.end() && it->second.position_listener >= 0) {
    dev_.remove_position_listener(it->second.position_listener);
  }
  master_->slaves_.erase(dev_.addr());
  if (master_->slaves_.empty()) {
    // The exact path polled until this instant: settle the quiescent
    // credit (and any pending deadline wake) before stopping for good.
    if (master_->quiesced_) {
      master_->settle_quiesce(PiconetMaster::kWakeDetach);
    }
    master_->poll_timer_.stop();
  }
}

PiconetMaster::PiconetMaster(Device& dev, Config cfg)
    : dev_(dev),
      cfg_(cfg),
      poll_timer_(dev.sim(), cfg.poll_interval, [this] { poll_round(); }),
      wake_proc_(dev.sim(), [this] { deadline_wake(); }),
      deadlines_(dev.sim(), "piconet",
                 {"supervision", "range", "traffic", "attach", "detach",
                  "position", "pause"}),
      c_elided_polls_(
          &dev.sim().obs().metrics.counter("piconet.elided_polls")),
      c_skipped_slots_(
          &dev.sim().obs().metrics.counter("kernel.skipped_slots")),
      c_quiesce_parks_(
          &dev.sim().obs().metrics.counter("piconet.quiesce_parks")) {
  BIPS_ASSERT(cfg_.max_active_slaves >= 1 && cfg_.max_active_slaves <= 7);
  BIPS_ASSERT(cfg_.poll_interval > Duration(0));
  // A discrete write to the *master's* position also invalidates every
  // speed-bound horizon of a supervised park.
  position_listener_ =
      dev_.add_position_listener([this] { on_position_write(); });
}

PiconetMaster::~PiconetMaster() {
  dev_.remove_position_listener(position_listener_);
  // Sever back-pointers so SlaveLinks outliving this master do not dangle.
  for (auto& [addr, s] : slaves_) {
    if (s.position_listener >= 0) {
      s.link->dev_.remove_position_listener(s.position_listener);
    }
    s.link->master_ = nullptr;
  }
}

bool PiconetMaster::attach(SlaveLink& slave) {
  const BdAddr a = slave.dev_.addr();
  if (slaves_.count(a) != 0) return false;
  if (static_cast<int>(active_count()) >= cfg_.max_active_slaves) {
    ++stats_.attach_rejected_full;
    return false;
  }
  BIPS_ASSERT_MSG(slave.master_ == nullptr,
                  "slave already attached to another piconet");
  // A supervised park cannot absorb a membership change: the newcomer's
  // supervision clock starts now and the scheduled deadline knows nothing
  // about it. Settle before inserting, so last_reachable reconstruction
  // only touches the slaves the park actually covered. (With supervision
  // off the no-op rounds stay elided on the same lattice -- a fresh slave
  // has no pending traffic.)
  if (quiesced_ && cfg_.supervision_timeout > Duration(0)) {
    wake_polls(kWakeAttach);
  }
  slave.master_ = this;
  const SimTime now = dev_.sim().now();
  SlaveState st;
  st.link = &slave;
  st.last_reachable = now;
  st.last_activity = now;
  st.position_listener =
      slave.dev_.add_position_listener([this] { on_position_write(); });
  slaves_.emplace(a, std::move(st));
  // While quiesced the loop is logically running (the no-op rounds stay
  // elided on the same lattice).
  if (!poll_timer_.running() && !paused_ && !quiesced_) poll_timer_.start();
  return true;
}

std::size_t PiconetMaster::active_count() const {
  std::size_t n = 0;
  for (const auto& [a, s] : slaves_) {
    if (!s.parked) ++n;
  }
  return n;
}

bool PiconetMaster::is_parked(BdAddr a) const {
  const auto it = slaves_.find(a);
  return it != slaves_.end() && it->second.parked;
}

bool PiconetMaster::park(BdAddr a) {
  const auto it = slaves_.find(a);
  if (it == slaves_.end() || it->second.parked) return false;
  if (static_cast<int>(parked_count()) >= cfg_.max_parked_slaves) {
    return false;
  }
  it->second.parked = true;
  ++stats_.parks;
  return true;
}

bool PiconetMaster::unpark(BdAddr a) {
  const auto it = slaves_.find(a);
  if (it == slaves_.end() || !it->second.parked) return false;
  if (static_cast<int>(active_count()) >= cfg_.max_active_slaves) {
    return false;
  }
  it->second.parked = false;
  it->second.last_activity = dev_.sim().now();
  ++stats_.unparks;
  return true;
}

BdAddr PiconetMaster::park_idlest(BdAddr except) {
  BdAddr victim;
  SimTime oldest = SimTime::max();
  for (const auto& [a, s] : slaves_) {
    if (s.parked || a == except) continue;
    // Never park a slave with traffic in flight.
    if (!s.tx_queue.empty() || !s.link->tx_queue_.empty()) continue;
    if (s.last_activity < oldest) {
      oldest = s.last_activity;
      victim = a;
    }
  }
  if (!victim.is_null()) park(victim);
  return victim;
}

void PiconetMaster::detach(BdAddr addr) {
  const auto it = slaves_.find(addr);
  if (it == slaves_.end()) return;
  SlaveLink* link = it->second.link;
  if (it->second.position_listener >= 0) {
    link->dev_.remove_position_listener(it->second.position_listener);
  }
  slaves_.erase(it);
  link->master_ = nullptr;
  link->tx_queue_.clear();
  if (link->on_disconnected_) link->on_disconnected_();
  if (slaves_.empty()) {
    // With members remaining a park stays valid (the departed slave's
    // deadline can only have been early -- an early wake is always safe);
    // an emptied roster settles the credit and stops for good.
    if (quiesced_) settle_quiesce(kWakeDetach);
    poll_timer_.stop();
  }
}

std::vector<BdAddr> PiconetMaster::slave_addrs() const {
  std::vector<BdAddr> out;
  out.reserve(slaves_.size());
  for (const auto& [a, s] : slaves_) out.push_back(a);
  return out;
}

bool PiconetMaster::send(BdAddr to, AclPayload payload) {
  const auto it = slaves_.find(to);
  if (it == slaves_.end()) return false;
  auto frags = fragment(it->second.next_msg_id++, payload,
                        cfg_.max_fragment_payload);
  for (auto& f : frags) it->second.tx_queue.push_back(std::move(f));
  wake_polls();
  return true;
}

void PiconetMaster::pause() {
  // The exact path keeps polling right up to the pause: settle any
  // quiescent credit (including last_reachable reconstruction) before
  // freezing.
  if (quiesced_) settle_quiesce(kWakePause);
  paused_ = true;
  poll_timer_.stop();
}

void PiconetMaster::wake_polls(WakeReason reason) {
  if (!quiesced_) return;
  settle_quiesce(reason);
  // First fire = the next round of the exact path's lattice. (Never in the
  // past: sync_poll_stat leaves quiesce_round_ <= now < round + interval.)
  poll_timer_.start_after(quiesce_round_ + cfg_.poll_interval -
                          dev_.sim().now());
}

void PiconetMaster::sync_poll_stat() const {
  if (!quiesced_) return;
  const auto k = static_cast<std::int64_t>(
      (dev_.sim().now() - quiesce_round_).ns() / cfg_.poll_interval.ns());
  if (k <= 0) return;
  stats_.polls += static_cast<std::uint64_t>(k);
  quiesce_round_ = quiesce_round_ + k * cfg_.poll_interval;
  c_elided_polls_->inc(static_cast<std::uint64_t>(k));
  c_skipped_slots_->inc(static_cast<std::uint64_t>(k));
}

void PiconetMaster::settle_quiesce(WakeReason reason) {
  BIPS_ASSERT(quiesced_);
  sync_poll_stat();  // advances quiesce_round_ to the last elided round
  // Every elided round provably found the ff_in_range-flagged slaves in
  // range (a supervised park never outlives a range horizon), so the exact
  // path would have refreshed them at each: reconstruct the final refresh.
  // Out-of-range slaves were provably out the whole time -- untouched.
  if (cfg_.supervision_timeout > Duration(0)) {
    for (auto& [a, s] : slaves_) {
      if (s.ff_in_range && s.last_reachable < quiesce_round_) {
        s.last_reachable = quiesce_round_;
      }
    }
  }
  quiesced_ = false;
  wake_proc_.cancel();
  deadlines_.record(reason);
  const std::uint64_t elided = static_cast<std::uint64_t>(
      (quiesce_round_ - park_started_) / cfg_.poll_interval);
  if (elided > 0) {
    dev_.sim().obs().tracer.emit(
        dev_.sim().now(), obs::TraceKind::kRadioFf,
        static_cast<std::uint32_t>(dev_.addr().raw()), elided,
        static_cast<std::uint64_t>((dev_.sim().now() - park_started_).ns()));
  }
}

void PiconetMaster::deadline_wake() {
  // Scheduled end of a supervised park, one poll interval *early*: the
  // round at the wake instant is still a provable no-op (it is credited by
  // the settle), and restarting the periodic timer here puts its first
  // real fire exactly at the earliest not-provably-no-op round -- with the
  // same arming instant the exact path's previous round would have used,
  // so same-instant FIFO ordering is preserved.
  if (quiesced_) {
    wake_polls(static_cast<WakeReason>(deadlines_.earliest_reason()));
  }
}

void PiconetMaster::on_position_write() {
  // A discrete position write (teleport) invalidates every speed-bound
  // horizon: end the park and let real rounds re-check ranges. Parks with
  // supervision off have no range duty and stay parked.
  if (quiesced_ && cfg_.supervision_timeout > Duration(0)) {
    wake_polls(kWakePosition);
  }
}

void PiconetMaster::resume() {
  paused_ = false;
  // A quiesced loop is logically running: restarting the timer would drum
  // real rounds against the lazy credit and double-count. (Reachable via a
  // scheduler stop() while the piconet is parked.)
  if (!slaves_.empty() && !quiesced_) poll_timer_.start();
}

double PiconetMaster::range_m() const {
  return dev_.range_m() > 0 ? dev_.range_m()
                            : dev_.radio().config().default_range_m;
}

bool PiconetMaster::slave_in_range(const SlaveState& s) const {
  const double range = range_m();
  return distance_sq(dev_.position(), s.link->dev_.position()) <=
         range * range;
}

void PiconetMaster::maybe_quiesce(SimTime now) {
  if (dev_.radio().config().exact_slots || !poll_timer_.running()) return;
  if (paused_ || quiesced_ || slaves_.empty()) return;
  for (const auto& [a, s] : slaves_) {
    if (!s.tx_queue.empty() || !s.link->tx_queue_.empty()) return;
  }

  if (cfg_.supervision_timeout == Duration(0)) {
    // Supervision off: every drained round is a no-op forever. Park with
    // no deadline; traffic, membership changes, or a pause settle it.
    quiesced_ = true;
    quiesce_round_ = now;
    park_started_ = now;
    poll_timer_.stop();
    deadlines_.reset();
    c_quiesce_parks_->inc();
    return;
  }
  if (cfg_.ff_max_speed_mps <= 0) return;

  // Supervised: a drained round's remaining duty is the per-slave range
  // check. The round at now + k*interval is a provable no-op while the
  // speed bound pins every slave's check outcome; `closing` assumes both
  // endpoints move straight at each other (or apart) at full speed.
  const double closing = 2.0 * cfg_.ff_max_speed_mps;
  const double range = range_m();
  const std::int64_t interval = cfg_.poll_interval.ns();
  const double round_reach = closing * static_cast<double>(interval) * 1e-9;
  deadlines_.reset();
  for (auto& [a, s] : slaves_) {
    const double d =
        std::sqrt(distance_sq(dev_.position(), s.link->dev_.position()));
    if (d <= range) {
      // In range through every round with k*round_reach <= range - d (the
      // refreshes it elides are reconstructed at settle); first round that
      // could have left range:
      s.ff_in_range = true;
      const std::int64_t k =
          static_cast<std::int64_t>((range - d) / round_reach) + 1;
      deadlines_.propose(kWakeRange, now + Duration::nanos(k * interval));
    } else {
      // Out of range through every round with k*round_reach < d - range
      // (those rounds elide nothing -- no refresh, and by construction no
      // disconnect); first round that could have re-entered:
      s.ff_in_range = false;
      std::int64_t k_in =
          static_cast<std::int64_t>(std::ceil((d - range) / round_reach));
      if (k_in < 1) k_in = 1;
      deadlines_.propose(kWakeRange, now + Duration::nanos(k_in * interval));
      // ...and, independently, the first round at which the supervision
      // deadline fires. The round that just ran did not disconnect it, so
      // the remaining need is positive.
      const std::int64_t need =
          (s.last_reachable + cfg_.supervision_timeout - now).ns();
      BIPS_ASSERT(need > 0);
      const std::int64_t k_d = (need + interval - 1) / interval;
      deadlines_.propose(kWakeSupervision,
                         now + Duration::nanos(k_d * interval));
    }
  }
  if (!deadlines_.pending()) return;

  // Park only when at least one round is actually elided: the deadline
  // wake lands one interval before the earliest unsafe round W (see
  // deadline_wake), so parking pays only for W >= now + 2 intervals.
  const SimTime unsafe = deadlines_.earliest();
  if (unsafe - now < 2 * cfg_.poll_interval) return;
  quiesced_ = true;
  quiesce_round_ = now;
  park_started_ = now;
  poll_timer_.stop();
  wake_proc_.call_at(unsafe - cfg_.poll_interval);
  c_quiesce_parks_->inc();
}

void PiconetMaster::poll_round() {
  ++stats_.polls;
  const SimTime now = dev_.sim().now();

  // Message callbacks may attach/detach slaves, so walk a snapshot of the
  // membership and re-look-up each slave.
  std::vector<BdAddr> lost;
  poll_snapshot_.clear();
  poll_snapshot_.reserve(slaves_.size());
  for (const auto& [a, s] : slaves_) poll_snapshot_.push_back(a);
  for (const BdAddr addr : poll_snapshot_) {
    const auto it = slaves_.find(addr);
    if (it == slaves_.end()) continue;  // detached by an earlier callback
    SlaveState& s = it->second;
    if (slave_in_range(s)) {
      s.last_reachable = now;
    } else {
      if (cfg_.supervision_timeout > Duration(0) &&
          now - s.last_reachable >= cfg_.supervision_timeout) {
        lost.push_back(addr);
      }
      continue;  // unreachable: traffic waits
    }

    if (s.parked) {
      // Parked slaves exchange no data; pending traffic in either
      // direction requests an unpark at the beacon (this poll round).
      const bool wants_traffic =
          !s.tx_queue.empty() || !s.link->tx_queue_.empty();
      if (!wants_traffic) continue;
      if (!unpark(addr)) {
        // No AM_ADDR free: rotate out a drained active slave so waiters
        // cycle through the active set across beacon rounds.
        if (park_idlest(addr).is_null()) continue;
        if (!unpark(addr)) continue;
      }
    }
    s.last_activity =
        (!s.tx_queue.empty() || !s.link->tx_queue_.empty()) ? now
                                                            : s.last_activity;

    // Exchange queued traffic: up to fragments_per_poll DM5 pieces per
    // direction per round (the slot budget of the poll), reassembled into
    // messages at the far end.
    for (int k = 0; k < cfg_.fragments_per_poll &&
                    slaves_.count(addr) != 0 && !s.tx_queue.empty();
         ++k) {
      AclPayload f = std::move(s.tx_queue.front());
      s.tx_queue.pop_front();
      ++stats_.fragments_delivered;
      if (auto msg = s.to_slave.push(f)) {
        ++stats_.messages_delivered;
        if (s.link->on_message_) s.link->on_message_(*msg);
      }
    }
    for (int k = 0; k < cfg_.fragments_per_poll &&
                    slaves_.count(addr) != 0 && !s.link->tx_queue_.empty();
         ++k) {
      AclPayload f = std::move(s.link->tx_queue_.front());
      s.link->tx_queue_.pop_front();
      ++stats_.fragments_delivered;
      if (auto msg = s.from_slave.push(f)) {
        ++stats_.messages_delivered;
        if (on_message_) on_message_(addr, *msg);
      }
    }
  }

  for (BdAddr addr : lost) {
    ++stats_.link_losses;
    BIPS_DEBUG(now, "piconet %s: supervision timeout for %s",
               dev_.addr().to_string().c_str(), addr.to_string().c_str());
    SlaveState& ls = slaves_.at(addr);
    SlaveLink* link = ls.link;
    if (ls.position_listener >= 0) {
      link->dev_.remove_position_listener(ls.position_listener);
    }
    slaves_.erase(addr);
    link->master_ = nullptr;
    link->tx_queue_.clear();
    if (link->on_disconnected_) link->on_disconnected_();
    if (on_link_loss_) on_link_loss_(addr);
  }
  if (slaves_.empty()) {
    poll_timer_.stop();
    return;
  }

  // Quiescent fast-forward: park the poll loop if every round until some
  // future instant is a provable no-op (DESIGN.md section 5c).
  maybe_quiesce(now);
}

}  // namespace bips::baseband
