// Page (connection-establishment) state machines.
//
// After discovery the master knows the target's BD_ADDR and a clock sample
// from its FHS, so it can predict which page-scan channel the slave will
// listen on and sweep a 16-channel train around that estimate (two 68 us ID
// packets per even slot, exactly like inquiry). The slave's page scan
// mirrors inquiry scan (default window 11.25 ms every 1.28 s, the values
// the paper quotes in section 3.2).
//
// Exchange once the trains meet, all on the contact channel:
//
//   master ID(target)  ->  slave hears in its window
//   slave  ID(target)  ->  625 us after the master ID began
//   master FHS         ->  625 us after the slave response began
//   slave  ID(target)  ->  625 us after the FHS began (the ack)
//
// after which both sides report the connection. There is no response
// backoff in paging: the ID is addressed, so only one device ever answers
// (page responses cannot collide the way inquiry responses do).
// Virtual slots: like the Inquirer, a pager whose target's page namespace
// shows no triggering listener within ff_radius() parks its sweep on a
// VirtualClock and fast-forwards closed-form when the target's scan window
// (the only thing that can answer an addressed ID) appears; the scanner
// side covers its committed response/ack flights with occupancy holds. See
// DESIGN.md section 5c.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "src/baseband/config.hpp"
#include "src/baseband/device.hpp"
#include "src/baseband/hopping.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/virtual_clock.hpp"

namespace bips::baseband {

/// Master side: pages one target at a time.
class Pager {
 public:
  using SuccessCallback = std::function<void(BdAddr slave, SimTime when)>;
  using FailureCallback = std::function<void(BdAddr slave)>;

  Pager(Device& dev, PageConfig cfg);
  ~Pager() { cancel(); }
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  void set_on_success(SuccessCallback cb) { on_success_ = std::move(cb); }
  void set_on_failure(FailureCallback cb) { on_failure_ = std::move(cb); }

  /// Starts paging `target`. `clock_sample` is the CLKN the target reported
  /// in its FHS at simulated time `sample_time`; pass sample_time = now and
  /// a random clock to model paging without an estimate (cold page).
  /// Only one page may be in flight; cancel() or completion frees the pager.
  void page(BdAddr target, std::uint32_t clock_sample, SimTime sample_time);

  void cancel();
  bool active() const { return active_; }
  BdAddr target() const { return target_; }

  struct Stats {
    std::uint64_t pages_started = 0;
    std::uint64_t pages_succeeded = 0;
    std::uint64_t pages_failed = 0;
    std::uint64_t ids_sent = 0;
  };
  /// Mode-invariant: while parked, the IDs the exact path would have sent
  /// by now are credited lazily (see Inquirer::stats).
  const Stats& stats() const {
    sync_park_stats();
    return stats_;
  }

 private:
  /// Estimated CLKN of the target at time t, extrapolated from the sample.
  std::uint32_t estimated_clkn(SimTime t) const;
  void tx_slot();
  void second_id();
  void close_pair(int k);
  void send_fhs();
  void ack_timed_out();
  void advance_phase();
  void on_response(const Packet& p, RfChannel ch, SimTime end);
  void on_ack(const Packet& p, SimTime end);
  void fail();
  void cleanup();
  void park(SimTime t0);
  void wake();
  /// Ends a park with no resume (cancel/timeout/shutdown), crediting the
  /// sweep the exact path would have drummed before `now`.
  void absorb_park(SimTime now);
  /// (first index, second index) of the two IDs the k-th slot after the
  /// park point would sweep, without mutating the live phase.
  std::pair<std::uint32_t, std::uint32_t> indices_at(std::uint64_t k) const;
  void advance_phase_by(std::uint64_t n);
  /// Folds the IDs -- and the energy of the elided TX/listen activity --
  /// of the current park (so far) into the ledgers without ending it;
  /// wake()/absorb_park() subtract what was already credited.
  void sync_park_stats() const;

  Device& dev_;
  PageConfig cfg_;
  SuccessCallback on_success_;
  FailureCallback on_failure_;

  bool active_ = false;
  bool awaiting_ack_ = false;
  BdAddr target_;
  std::uint32_t clock_sample_ = 0;
  SimTime sample_time_;
  std::uint32_t train_base_index_ = 0;  // first index of current train
  bool on_second_train_ = false;
  int reps_ = 0;
  std::uint32_t tx_slot_ = 0;

  // Per-page state the processes read instead of capturing per slot: the
  // addressed ID packet, the channel of the delayed second ID, and the
  // contact channel the response arrived on.
  Packet id_packet_;
  std::uint32_t second_index_ = 0;
  RfChannel contact_ch_;
  sim::Process slot_proc_;
  sim::Process id2_proc_;
  sim::Process close_procs_[2];
  ListenId open_pairs_[2][2] = {{kNoListen, kNoListen},
                                {kNoListen, kNoListen}};
  int close_rotor_ = 0;
  sim::Process fhs_proc_;
  sim::Process ack_timeout_proc_;
  sim::Process page_timeout_proc_;
  ListenId ack_listen_ = kNoListen;

  // Fast-forward state (see Inquirer).
  bool exact_ = true;
  std::uint32_t page_ns_ = 0;  // the target's hop-set namespace
  sim::VirtualClock vclock_;
  sim::Process wake_proc_;
  OccupancySubId occ_sub_ = kNoOccupancySub;

  // Mutable for sync_park_stats() (const reads mid-park credit lazily);
  // park_ids_credited_ is what the current park has already folded in, and
  // the two Durations the TX / listen energy those reads already pushed
  // into the device's EnergyMeter (subtracted from the bulk wake credit).
  mutable Stats stats_;
  mutable std::uint64_t park_ids_credited_ = 0;
  mutable Duration park_tx_credited_;
  mutable Duration park_listen_credited_;
};

/// Slave side: periodically listens for pages addressed to it.
class PageScanner {
 public:
  /// master + the FHS clock needed to join the piconet hopping.
  using ConnectedCallback =
      std::function<void(BdAddr master, std::uint32_t master_clock,
                         SimTime when)>;

  PageScanner(Device& dev, ScanConfig cfg);
  ~PageScanner() { stop(); }
  PageScanner(const PageScanner&) = delete;
  PageScanner& operator=(const PageScanner&) = delete;

  void set_on_connected(ConnectedCallback cb) {
    on_connected_ = std::move(cb);
  }

  /// Starts the periodic page-scan schedule (random phase unless given).
  void start();
  void start_with_phase(Duration phase);
  void stop();
  bool running() const { return running_; }

  struct Stats {
    std::uint64_t windows_opened = 0;
    std::uint64_t pages_heard = 0;
    std::uint64_t connections = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void open_window();
  void close_window();
  void end_listen();
  void send_response();
  void send_ack();
  void on_page_id(const Packet& p, RfChannel ch, SimTime end);
  void on_fhs(const Packet& p, RfChannel ch, SimTime end);

  Device& dev_;
  ScanConfig cfg_;
  ConnectedCallback on_connected_;

  bool running_ = false;
  bool window_open_ = false;
  bool responding_ = false;  // mid-exchange; suppress window churn
  std::uint64_t window_index_ = 0;
  ListenId listen_ = kNoListen;

  // Mid-exchange state the processes read instead of capturing: the contact
  // channel and the master identity from its FHS.
  RfChannel contact_ch_;
  BdAddr pending_master_;
  std::uint32_t pending_master_clock_ = 0;
  sim::Process window_open_proc_;
  sim::Process window_close_proc_;
  sim::Process respond_proc_;
  sim::Process fhs_timeout_proc_;
  sim::Process ack_proc_;

  Stats stats_;
};

}  // namespace bips::baseband
