#include "src/baseband/inquiry_scan.hpp"

#include "src/util/log.hpp"

namespace bips::baseband {

InquiryScanner::InquiryScanner(Device& dev, ScanConfig scan,
                               BackoffConfig backoff)
    : dev_(dev),
      scan_(scan),
      backoff_(backoff),
      window_open_proc_(dev.sim(), [this] { open_window(); }),
      window_close_proc_(dev.sim(), [this] { close_window(); }),
      interlace_proc_(dev.sim(), [this] { interlace_retune(); }),
      backoff_proc_(dev.sim(), [this] { backoff_expired(); }),
      armed_close_proc_(dev.sim(),
                        [this] {
                          if (!window_open_) end_listen();
                        }),
      response_proc_(dev.sim(), [this] { send_response(); }) {
  BIPS_ASSERT(scan_.window > Duration(0));
  BIPS_ASSERT(scan_.interval >=
              (scan_.interlaced ? 2 * scan_.window : scan_.window));
  BIPS_ASSERT(backoff_.max_slots >= 0);
}

void InquiryScanner::set_initial_channel(std::uint32_t index) {
  BIPS_ASSERT(index < kChannelsPerSet);
  BIPS_ASSERT_MSG(!running_, "set_initial_channel before start()");
  initial_channel_ = index;
  initial_channel_set_ = true;
}

std::uint32_t InquiryScanner::channel_for_window(
    std::uint64_t window_index) const {
  switch (scan_.channel_mode) {
    case ScanChannelMode::kFixed:
      return initial_channel_;
    case ScanChannelMode::kStickyTrain: {
      const std::uint32_t base = train_base(train_of(initial_channel_));
      const std::uint64_t offset = (initial_channel_ - base) + window_index;
      return base + static_cast<std::uint32_t>(offset % kTrainSize);
    }
    case ScanChannelMode::kSequence:
      return static_cast<std::uint32_t>((initial_channel_ + window_index) %
                                        kChannelsPerSet);
  }
  return initial_channel_;
}

void InquiryScanner::start() {
  const Duration phase = Duration::nanos(static_cast<std::int64_t>(
      dev_.rng().uniform(static_cast<std::uint64_t>(scan_.interval.ns()))));
  start_with_phase(phase);
}

void InquiryScanner::start_with_phase(Duration phase) {
  BIPS_ASSERT(!running_);
  BIPS_ASSERT(phase >= Duration(0));
  if (!initial_channel_set_) {
    initial_channel_ =
        static_cast<std::uint32_t>(dev_.rng().uniform(kChannelsPerSet));
    initial_channel_set_ = true;
  }
  running_ = true;
  window_index_ = 0;
  armed_ = false;
  backoff_pending_ = false;
  window_open_proc_.call_after(phase);
}

void InquiryScanner::stop() {
  if (!running_) return;
  running_ = false;
  window_open_proc_.cancel();
  window_close_proc_.cancel();
  interlace_proc_.cancel();
  backoff_proc_.cancel();
  armed_close_proc_.cancel();
  response_proc_.cancel();
  end_listen();
  window_open_ = false;
  backoff_pending_ = false;
  armed_ = false;
}

void InquiryScanner::open_window() {
  if (!running_) return;
  ++stats_.windows_opened;
  window_open_ = true;
  window_channel_ = channel_for_window(window_index_);
  ++window_index_;
  const Duration open_span =
      scan_.interlaced ? 2 * scan_.window : scan_.window;
  // Close first, then next open: with interval == window (continuous scan)
  // both land on the same instant and FIFO ordering retunes seamlessly.
  window_close_proc_.call_after(open_span);
  window_open_proc_.call_after(scan_.interval);
  if (scan_.interlaced) {
    // Second back-to-back sub-window on the complementary train.
    interlace_proc_.call_after(scan_.window);
  }
  if (backoff_pending_) return;  // asleep: skip this window
  if (armed_ && listen_ != kNoListen) {
    // Post-backoff continuous listening: retune to the new scan channel.
    end_listen();
  }
  begin_listen(window_channel_);
}

void InquiryScanner::close_window() {
  window_open_ = false;
  end_listen();
}

void InquiryScanner::interlace_retune() {
  if (backoff_pending_ || armed_) return;  // states that manage listens
  if (!window_open_) return;
  window_channel_ = (window_channel_ + kTrainSize) % kChannelsPerSet;
  end_listen();
  begin_listen(window_channel_);
}

void InquiryScanner::begin_listen(std::uint32_t channel_index) {
  if (listen_ != kNoListen) return;  // already tuned (idempotent)
  listen_ = dev_.radio().start_listen(
      &dev_, inquiry_channel(channel_index),
      [this](const Packet& p, RfChannel ch, SimTime end) {
        on_id(p, ch, end);
      });
}

void InquiryScanner::end_listen() {
  dev_.radio().stop_listen(listen_);
  listen_ = kNoListen;
}

void InquiryScanner::on_id(const Packet& p, RfChannel ch, SimTime end) {
  if (p.type != PacketType::kId || !p.access_code.is_null()) return;
  ++stats_.ids_heard;
  end_listen();

  if (armed_) {
    // Respond with FHS exactly 625 us after the start of the heard ID.
    const SimTime id_start = end - p.duration();
    armed_ = false;
    response_index_ = ch.index;
    response_proc_.call_at(id_start + kSlot);
    // The listen just closed, but the committed response is still in
    // flight: hold the occupancy so nearby masters keep drumming exactly
    // until it lands (their skipped slots could otherwise silently collide
    // with -- or be overheard as -- this FHS). Ends with the FHS's air time.
    dev_.radio().occupancy_hold(ch, dev_.position(),
                                id_start + kSlot + Duration::micros(366));
    return;
  }

  // First ID of a discovery exchange: back off before answering.
  arm_backoff();
}

void InquiryScanner::send_response() {
  Packet fhs;
  fhs.type = PacketType::kFhs;
  fhs.sender = dev_.addr();
  fhs.clock = dev_.clock().clkn(dev_.sim().now());
  dev_.radio().transmit(&dev_, inquiry_response_channel(response_index_), fhs);
  ++stats_.fhs_sent;
  dev_.sim().obs().tracer.emit(dev_.sim().now(), obs::TraceKind::kScanFhs,
                               static_cast<std::uint32_t>(dev_.addr().raw()),
                               response_index_);
  BIPS_TRACE(dev_.sim().now(), "scanner %s: FHS sent on ch %u",
             dev_.addr().to_string().c_str(), response_index_);
  if (on_response_sent_) on_response_sent_(dev_.sim().now());
  if (backoff_.respond_repeatedly) {
    arm_backoff();
  } else {
    stop();
  }
}

void InquiryScanner::arm_backoff() {
  ++stats_.backoffs;
  backoff_pending_ = true;
  const auto slots = static_cast<std::int64_t>(
      dev_.rng().uniform(static_cast<std::uint64_t>(backoff_.max_slots) + 1));
  backoff_proc_.call_after(slots * kSlot);
}

void InquiryScanner::backoff_expired() {
  backoff_pending_ = false;
  armed_ = true;
  // Immediately back to the inquiry-scan substate for one bonus window on
  // the current scan channel (the spec's post-backoff re-entry). Against a
  // master that is actively inquiring this catches the awaited second ID
  // within one train sweep; if the master has gone quiet, the armed state
  // rides the regular window schedule instead of burning the radio.
  begin_listen(window_channel_);
  armed_close_proc_.call_after(scan_.window);
}

}  // namespace bips::baseband
