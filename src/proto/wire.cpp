#include "src/proto/wire.hpp"

#include <cstring>

namespace bips::proto {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::str(std::string_view s) {
  const auto n = static_cast<std::uint16_t>(
      s.size() > 0xFFFF ? 0xFFFF : s.size());
  u16(n);
  buf_.insert(buf_.end(), s.begin(), s.begin() + n);
}

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!need(2)) return 0;
  std::uint16_t v = data_[pos_];
  v |= static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return ok_ ? v : 0.0;
}

std::string Reader::str() {
  const std::uint16_t n = u16();
  if (!need(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

}  // namespace bips::proto
