// BIPS protocol messages.
//
// Two hops use this vocabulary:
//   handheld <-> workstation (over the ACL link): Login/Logout/queries
//   workstation <-> server   (over the LAN):      the same, relayed, plus
//                                                 presence deltas
//
// The spatio-temporal query of the paper ("select the actual piconet of the
// device associated with this user name") is WhereIsRequest; PathRequest
// additionally asks for the shortest path to the target's room.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/proto/wire.hpp"
#include "src/util/time.hpp"

namespace bips::proto {

enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kUnknownUser = 1,    // target name not registered
  kNotLoggedIn = 2,    // target registered but offline
  kAccessDenied = 3,   // requester lacks the right to locate the target
  kUnreachable = 4,    // no path between the rooms (should not happen:
                       // the building graph is connected)
  kLocationUnknown = 5,  // logged in, but not currently attributed to any
                         // piconet (between rooms, or not yet discovered)
  kZoneUnavailable = 6,  // the location shard owning the queried zone is
                         // crashed; other zones keep answering
};

const char* to_string(QueryStatus s);

/// A routable spatio-temporal query: one value names the requester (empty =
/// system operator, all rights), a kind and that kind's operands. This is
/// the *only* lookup surface of BipsServer (the per-kind convenience
/// methods are gone), and it has a versioned wire encoding so the
/// partitioned service can fan a query out across location shards and a
/// trace replay can reconstruct the exact request stream.
struct Query {
  enum class Kind : std::uint8_t {
    kWhereIs = 0,       // current room of user `target`
    kPathTo = 1,        // shortest path from `from_station` to `target`
    kWhoIsIn = 2,       // users currently in room `target`
    kWhereWas = 3,      // room of `target` at instant `at_ns`
    kHistorySince = 4,  // transitions of `target` at or after `at_ns`
  };

  Kind kind = Kind::kWhereIs;
  std::string requester;  // userid; empty = system operator
  std::string target;     // user display name, or room name for kWhoIsIn
  std::uint32_t from_station = UINT32_MAX;  // kPathTo
  std::int64_t at_ns = 0;                   // kWhereWas / kHistorySince

  static Query where_is(std::string_view requester, std::string_view target);
  static Query path_to(std::string_view requester, std::string_view target,
                       std::uint32_t from_station);
  static Query who_is_in(std::string_view requester, std::string_view room);
  static Query where_was(std::string_view requester, std::string_view target,
                         SimTime at);
  static Query history_since(std::string_view requester,
                             std::string_view target, SimTime since);
};

/// The union of every query kind's answer; `status` decides which fields
/// are meaningful.
struct QueryResult {
  QueryStatus status = QueryStatus::kOk;
  bool ok() const { return status == QueryStatus::kOk; }

  std::string room;                // kWhereIs / kWhereWas
  std::vector<std::string> users;  // kWhoIsIn (sorted)
  std::vector<std::string> rooms;  // kPathTo (route, in walking order)
  double distance = 0.0;           // kPathTo (metres)
  bool was_present = false;        // kWhereWas: the fix existed
  SimTime since;                   // kWhereWas: attribution start

  struct Visit {
    std::string room;
    bool entered = false;  // false: the transition was a departure
    SimTime at;
  };
  std::vector<Visit> visits;  // kHistorySince, chronological
};

/// Wire-format version byte leading every encoded Query/QueryResult body.
/// Bump on layout changes; decode rejects versions it does not know.
inline constexpr std::uint8_t kQueryWireVersion = 1;

/// Wire-format version byte leading the session messages (LoginRequest /
/// LoginReply): their layout changed when the server epoch started riding
/// the login exchange, so they are versioned the same way Query is. Bump on
/// layout changes; decode rejects versions it does not know.
inline constexpr std::uint8_t kSessionWireVersion = 2;

struct LoginRequest {
  std::uint64_t bd_addr = 0;
  std::string userid;
  std::string password;
  /// The server epoch this client's previous session was granted under
  /// (LoginReply::server_epoch of that login); 0 = first login since boot.
  /// Nonzero lets the server distinguish an amnesia re-login from a fresh
  /// login and count it under svc.relogin.
  std::uint32_t prior_epoch = 0;
};

struct LoginReply {
  std::uint64_t bd_addr = 0;
  bool ok = false;
  std::string reason;
  /// The incarnation that granted this session. The client records it as
  /// its login epoch; an EpochNotice advancing past it means the session
  /// died with the old incarnation and must be re-established.
  std::uint32_t server_epoch = 0;
};

struct LogoutRequest {
  std::uint64_t bd_addr = 0;
  std::string userid;
};

struct LogoutReply {
  std::uint64_t bd_addr = 0;
  bool ok = false;
};

/// Delta update from a workstation: `present` announces a new presence in
/// its piconet, otherwise a new absence. Workstations only send these on
/// changes (paper section 2: "updates the central location database only
/// when it reveals a new presence or a new absence").
///
/// `seq` is a per-workstation sequence number; the server acknowledges
/// cumulatively with PresenceAck and deduplicates retransmissions, so the
/// delta stream survives LAN loss without double-applying.
struct PresenceUpdate {
  std::uint32_t workstation = 0;  // room/node id of the reporting station
  std::uint64_t bd_addr = 0;
  bool present = false;
  std::int64_t timestamp_ns = 0;
  std::uint64_t seq = 0;
  /// Signal strength of the sighting (inquiry response). Lets the server
  /// arbitrate near-simultaneous claims from overlapping piconets: the
  /// louder workstation is the closer one.
  double rssi_dbm = 0.0;
};

/// Batched presence deltas: one datagram carrying every update a
/// workstation currently has in flight. The retransmit path coalesces its
/// whole unacked queue into one of these instead of one datagram per delta,
/// so a long server (or shard) outage costs one uplink datagram per
/// retransmit period rather than one per in-flux device. The server applies
/// the entries in order through the exact same dedup/arbitration path as
/// individual PresenceUpdates and acknowledges once, cumulatively.
struct PresenceBatch {
  std::uint32_t workstation = 0;
  std::vector<PresenceUpdate> updates;
};

/// Cumulative acknowledgement of a workstation's presence stream: every
/// update with seq <= `seq` has been applied (or deduplicated) at the
/// server.
///
/// `server_epoch` piggybacks the server's incarnation number (see
/// SyncRequest) so workstations notice a server restart even if the restart
/// broadcast was lost on the LAN. 0 = sent by a pre-epoch server (tests).
struct PresenceAck {
  std::uint32_t workstation = 0;
  std::uint64_t seq = 0;
  std::uint32_t server_epoch = 0;
};

/// Liveness beacon from a workstation. The server's failure detector
/// expires the presence records of stations that go silent (a crashed
/// workstation can never send the absences for the devices it tracked).
struct Heartbeat {
  std::uint32_t workstation = 0;
  std::int64_t timestamp_ns = 0;
};

/// Server -> workstation reply to a Heartbeat, carrying the server's
/// incarnation number. A workstation that sees the epoch advance knows the
/// server restarted with an empty location database and pushes a
/// SyncSnapshot without waiting for a (possibly lost) SyncRequest.
struct HeartbeatAck {
  std::uint32_t server_epoch = 0;
};

/// Server -> workstation: "my location database is empty for you, send me
/// your state". Broadcast to every LAN node after a server restart (with a
/// freshly incremented epoch), and unicast to a station whose records the
/// failure detector expired but which turned out to be alive.
struct SyncRequest {
  std::uint32_t server_epoch = 0;
  std::int64_t timestamp_ns = 0;
};

/// One device a workstation currently tracks (SyncSnapshot entry).
struct SyncPresence {
  std::uint64_t bd_addr = 0;
  double rssi_dbm = 0.0;
};

/// One session hint (SyncSnapshot entry): a userid <-> BD_ADDR binding the
/// workstation witnessed while relaying a successful login. Best-effort --
/// the server only accepts it for registered users and unbound addresses.
struct SyncSession {
  std::uint64_t bd_addr = 0;
  std::string userid;
};

/// Workstation -> server full-state answer to a SyncRequest (or sent
/// spontaneously on noticing an epoch advance): everything the workstation
/// currently tracks, plus the session bindings it can attest to. Replaces
/// the hours of organic re-sightings a restarted server would otherwise
/// need to reconverge.
struct SyncSnapshot {
  std::uint32_t workstation = 0;
  std::uint32_t server_epoch = 0;
  std::int64_t timestamp_ns = 0;
  std::vector<SyncPresence> present;
  std::vector<SyncSession> sessions;
};

struct WhereIsRequest {
  std::uint32_t query_id = 0;
  std::uint64_t requester_bd_addr = 0;
  std::string target_user;  // registered *name*, per the paper's query
};

struct WhereIsReply {
  std::uint32_t query_id = 0;
  QueryStatus status = QueryStatus::kOk;
  std::string room;  // target's current room name when status == kOk
};

struct PathRequest {
  std::uint32_t query_id = 0;
  std::uint64_t requester_bd_addr = 0;
  std::string target_user;
  std::uint32_t from_room = 0;  // room of the requester's workstation
};

struct PathReply {
  std::uint32_t query_id = 0;
  QueryStatus status = QueryStatus::kOk;
  std::vector<std::string> rooms;  // inclusive room sequence
  double distance = 0.0;           // sum of edge weights
};

/// Inverse spatial query: everyone currently in a room. The reply lists
/// only users the requester has the right to locate.
struct WhoIsInRequest {
  std::uint32_t query_id = 0;
  std::uint64_t requester_bd_addr = 0;
  std::string room;
};

struct WhoIsInReply {
  std::uint32_t query_id = 0;
  QueryStatus status = QueryStatus::kOk;
  std::vector<std::string> users;  // registered names
};

/// Temporal half of the spatio-temporal query: where was a user at a past
/// instant (served from the location database's transition history).
struct HistoryRequest {
  std::uint32_t query_id = 0;
  std::uint64_t requester_bd_addr = 0;
  std::string target_user;
  std::int64_t at_time_ns = 0;
};

struct HistoryReply {
  std::uint32_t query_id = 0;
  QueryStatus status = QueryStatus::kOk;
  bool was_present = false;
  std::string room;         // valid when was_present
  std::int64_t since_ns = 0;  // start of that attribution
};

/// Movement subscription: "notify me whenever <target_user> enters or
/// leaves a room". Events are pushed through whichever workstation serves
/// the subscriber at delivery time. Subscriptions die with the session.
struct SubscribeRequest {
  std::uint32_t query_id = 0;
  std::uint64_t requester_bd_addr = 0;
  std::string target_user;
  bool unsubscribe = false;
};

struct SubscribeReply {
  std::uint32_t query_id = 0;
  QueryStatus status = QueryStatus::kOk;
};

/// Workstation -> handheld: "the server is now at incarnation
/// `server_epoch`". The last hop of the epoch relay (server -> workstation
/// via HeartbeatAck/PresenceAck/SyncRequest, workstation -> slave via this
/// message): a client whose session was granted under an older epoch knows
/// the restarted server has forgotten it and re-sends LoginRequest, even if
/// no workstation can attest its session in a resync snapshot. Broadcast to
/// every attached slave (parked included -- queued traffic auto-unparks
/// them) when the workstation adopts a new epoch, and unicast to each newly
/// attached slave so a walker arriving mid-outage still hears about it.
struct EpochNotice {
  std::uint32_t server_epoch = 0;
};

/// Server -> subscriber push (relayed by the subscriber's workstation).
struct MovementEvent {
  std::uint64_t subscriber_bd_addr = 0;
  std::string target_user;
  bool entered = false;  // false = left
  std::string room;
  std::int64_t timestamp_ns = 0;
};

using Message =
    std::variant<LoginRequest, LoginReply, LogoutRequest, LogoutReply,
                 PresenceUpdate, WhereIsRequest, WhereIsReply, PathRequest,
                 PathReply, PresenceAck, WhoIsInRequest, WhoIsInReply,
                 HistoryRequest, HistoryReply, SubscribeRequest,
                 SubscribeReply, MovementEvent, Heartbeat, HeartbeatAck,
                 SyncRequest, SyncSnapshot, PresenceBatch, Query,
                 QueryResult, EpochNotice>;

/// Serialises a message (1-byte tag + body).
Bytes encode(const Message& m);

/// Parses a datagram; nullopt on unknown tag, truncation, or trailing bytes.
std::optional<Message> decode(const Bytes& data);

}  // namespace bips::proto
