// Byte-level wire encoding: little-endian integers, length-prefixed strings.
//
// Used for both LAN datagrams (workstation <-> server) and ACL payloads
// (handheld <-> workstation). The Reader carries a sticky error flag instead
// of throwing: malformed input from the network must never crash a server.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bips::proto {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed (u16) string; truncates beyond 65535 bytes.
  void str(std::string_view s);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  /// True while no underflow/overread has occurred. Once false, every
  /// subsequent read returns a zero value.
  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();

 private:
  bool need(std::size_t n);

  const Bytes& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace bips::proto
