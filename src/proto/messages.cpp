#include "src/proto/messages.hpp"

namespace bips::proto {

const char* to_string(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kUnknownUser: return "unknown-user";
    case QueryStatus::kNotLoggedIn: return "not-logged-in";
    case QueryStatus::kAccessDenied: return "access-denied";
    case QueryStatus::kUnreachable: return "unreachable";
    case QueryStatus::kLocationUnknown: return "location-unknown";
    case QueryStatus::kZoneUnavailable: return "zone-unavailable";
  }
  return "?";
}

// ---- Query / QueryResult construction ---------------------------------

Query Query::where_is(std::string_view requester, std::string_view target) {
  Query q;
  q.kind = Kind::kWhereIs;
  q.requester = std::string(requester);
  q.target = std::string(target);
  return q;
}

Query Query::path_to(std::string_view requester, std::string_view target,
                     std::uint32_t from_station) {
  Query q;
  q.kind = Kind::kPathTo;
  q.requester = std::string(requester);
  q.target = std::string(target);
  q.from_station = from_station;
  return q;
}

Query Query::who_is_in(std::string_view requester, std::string_view room) {
  Query q;
  q.kind = Kind::kWhoIsIn;
  q.requester = std::string(requester);
  q.target = std::string(room);
  return q;
}

Query Query::where_was(std::string_view requester, std::string_view target,
                       SimTime at) {
  Query q;
  q.kind = Kind::kWhereWas;
  q.requester = std::string(requester);
  q.target = std::string(target);
  q.at_ns = at.ns();
  return q;
}

Query Query::history_since(std::string_view requester,
                           std::string_view target, SimTime since) {
  Query q;
  q.kind = Kind::kHistorySince;
  q.requester = std::string(requester);
  q.target = std::string(target);
  q.at_ns = since.ns();
  return q;
}

namespace {

enum class Tag : std::uint8_t {
  kLoginRequest = 1,
  kLoginReply = 2,
  kLogoutRequest = 3,
  kLogoutReply = 4,
  kPresenceUpdate = 5,
  kWhereIsRequest = 6,
  kWhereIsReply = 7,
  kPathRequest = 8,
  kPathReply = 9,
  kPresenceAck = 10,
  kWhoIsInRequest = 11,
  kWhoIsInReply = 12,
  kHistoryRequest = 13,
  kHistoryReply = 14,
  kSubscribeRequest = 15,
  kSubscribeReply = 16,
  kMovementEvent = 17,
  kHeartbeat = 18,
  kHeartbeatAck = 19,
  kSyncRequest = 20,
  kSyncSnapshot = 21,
  kPresenceBatch = 22,
  kQuery = 23,
  kQueryResult = 24,
  kEpochNotice = 25,
};
constexpr std::uint8_t kMaxTag = 25;

// The session messages lead with kSessionWireVersion (see messages.hpp):
// their layout gained the epoch fields, and decode must reject the old
// unversioned layout instead of misparsing it.
void body(Writer& w, const LoginRequest& m) {
  w.u8(kSessionWireVersion);
  w.u64(m.bd_addr);
  w.str(m.userid);
  w.str(m.password);
  w.u32(m.prior_epoch);
}
void body(Writer& w, const LoginReply& m) {
  w.u8(kSessionWireVersion);
  w.u64(m.bd_addr);
  w.boolean(m.ok);
  w.str(m.reason);
  w.u32(m.server_epoch);
}
void body(Writer& w, const LogoutRequest& m) {
  w.u64(m.bd_addr);
  w.str(m.userid);
}
void body(Writer& w, const LogoutReply& m) {
  w.u64(m.bd_addr);
  w.boolean(m.ok);
}
void body(Writer& w, const PresenceUpdate& m) {
  w.u32(m.workstation);
  w.u64(m.bd_addr);
  w.boolean(m.present);
  w.i64(m.timestamp_ns);
  w.u64(m.seq);
  w.f64(m.rssi_dbm);
}
void body(Writer& w, const PresenceAck& m) {
  w.u32(m.workstation);
  w.u64(m.seq);
  w.u32(m.server_epoch);
}
void body(Writer& w, const WhoIsInRequest& m) {
  w.u32(m.query_id);
  w.u64(m.requester_bd_addr);
  w.str(m.room);
}
void body(Writer& w, const WhoIsInReply& m) {
  w.u32(m.query_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u16(static_cast<std::uint16_t>(m.users.size()));
  for (const auto& u : m.users) w.str(u);
}
void body(Writer& w, const HistoryRequest& m) {
  w.u32(m.query_id);
  w.u64(m.requester_bd_addr);
  w.str(m.target_user);
  w.i64(m.at_time_ns);
}
void body(Writer& w, const HistoryReply& m) {
  w.u32(m.query_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.boolean(m.was_present);
  w.str(m.room);
  w.i64(m.since_ns);
}
void body(Writer& w, const SubscribeRequest& m) {
  w.u32(m.query_id);
  w.u64(m.requester_bd_addr);
  w.str(m.target_user);
  w.boolean(m.unsubscribe);
}
void body(Writer& w, const SubscribeReply& m) {
  w.u32(m.query_id);
  w.u8(static_cast<std::uint8_t>(m.status));
}
void body(Writer& w, const Heartbeat& m) {
  w.u32(m.workstation);
  w.i64(m.timestamp_ns);
}
void body(Writer& w, const HeartbeatAck& m) { w.u32(m.server_epoch); }
void body(Writer& w, const EpochNotice& m) { w.u32(m.server_epoch); }
void body(Writer& w, const SyncRequest& m) {
  w.u32(m.server_epoch);
  w.i64(m.timestamp_ns);
}
void body(Writer& w, const SyncSnapshot& m) {
  w.u32(m.workstation);
  w.u32(m.server_epoch);
  w.i64(m.timestamp_ns);
  w.u16(static_cast<std::uint16_t>(m.present.size()));
  for (const auto& p : m.present) {
    w.u64(p.bd_addr);
    w.f64(p.rssi_dbm);
  }
  w.u16(static_cast<std::uint16_t>(m.sessions.size()));
  for (const auto& s : m.sessions) {
    w.u64(s.bd_addr);
    w.str(s.userid);
  }
}
void body(Writer& w, const MovementEvent& m) {
  w.u64(m.subscriber_bd_addr);
  w.str(m.target_user);
  w.boolean(m.entered);
  w.str(m.room);
  w.i64(m.timestamp_ns);
}
void body(Writer& w, const WhereIsRequest& m) {
  w.u32(m.query_id);
  w.u64(m.requester_bd_addr);
  w.str(m.target_user);
}
void body(Writer& w, const WhereIsReply& m) {
  w.u32(m.query_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.str(m.room);
}
void body(Writer& w, const PathRequest& m) {
  w.u32(m.query_id);
  w.u64(m.requester_bd_addr);
  w.str(m.target_user);
  w.u32(m.from_room);
}
void body(Writer& w, const PathReply& m) {
  w.u32(m.query_id);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.u16(static_cast<std::uint16_t>(m.rooms.size()));
  for (const auto& r : m.rooms) w.str(r);
  w.f64(m.distance);
}

void body(Writer& w, const PresenceBatch& m) {
  w.u32(m.workstation);
  w.u16(static_cast<std::uint16_t>(m.updates.size()));
  for (const auto& u : m.updates) body(w, u);
}
// Versioned bodies: Query/QueryResult lead with kQueryWireVersion so the
// layout can evolve while old traces stay replayable (decode rejects
// unknown versions instead of misparsing).
void body(Writer& w, const Query& m) {
  w.u8(kQueryWireVersion);
  w.u8(static_cast<std::uint8_t>(m.kind));
  w.str(m.requester);
  w.str(m.target);
  w.u32(m.from_station);
  w.i64(m.at_ns);
}
void body(Writer& w, const QueryResult& m) {
  w.u8(kQueryWireVersion);
  w.u8(static_cast<std::uint8_t>(m.status));
  w.str(m.room);
  w.u16(static_cast<std::uint16_t>(m.users.size()));
  for (const auto& u : m.users) w.str(u);
  w.u16(static_cast<std::uint16_t>(m.rooms.size()));
  for (const auto& r : m.rooms) w.str(r);
  w.f64(m.distance);
  w.boolean(m.was_present);
  w.i64(m.since.ns());
  w.u16(static_cast<std::uint16_t>(m.visits.size()));
  for (const auto& v : m.visits) {
    w.str(v.room);
    w.boolean(v.entered);
    w.i64(v.at.ns());
  }
}

Tag tag_of(const Message& m) {
  return std::visit(
      [](const auto& v) -> Tag {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, LoginRequest>) return Tag::kLoginRequest;
        if constexpr (std::is_same_v<T, LoginReply>) return Tag::kLoginReply;
        if constexpr (std::is_same_v<T, LogoutRequest>) return Tag::kLogoutRequest;
        if constexpr (std::is_same_v<T, LogoutReply>) return Tag::kLogoutReply;
        if constexpr (std::is_same_v<T, PresenceUpdate>) return Tag::kPresenceUpdate;
        if constexpr (std::is_same_v<T, WhereIsRequest>) return Tag::kWhereIsRequest;
        if constexpr (std::is_same_v<T, WhereIsReply>) return Tag::kWhereIsReply;
        if constexpr (std::is_same_v<T, PathRequest>) return Tag::kPathRequest;
        if constexpr (std::is_same_v<T, PathReply>) return Tag::kPathReply;
        if constexpr (std::is_same_v<T, PresenceAck>) return Tag::kPresenceAck;
        if constexpr (std::is_same_v<T, WhoIsInRequest>) return Tag::kWhoIsInRequest;
        if constexpr (std::is_same_v<T, WhoIsInReply>) return Tag::kWhoIsInReply;
        if constexpr (std::is_same_v<T, HistoryRequest>) return Tag::kHistoryRequest;
        if constexpr (std::is_same_v<T, HistoryReply>) return Tag::kHistoryReply;
        if constexpr (std::is_same_v<T, SubscribeRequest>) return Tag::kSubscribeRequest;
        if constexpr (std::is_same_v<T, SubscribeReply>) return Tag::kSubscribeReply;
        if constexpr (std::is_same_v<T, MovementEvent>) return Tag::kMovementEvent;
        if constexpr (std::is_same_v<T, Heartbeat>) return Tag::kHeartbeat;
        if constexpr (std::is_same_v<T, HeartbeatAck>) return Tag::kHeartbeatAck;
        if constexpr (std::is_same_v<T, SyncRequest>) return Tag::kSyncRequest;
        if constexpr (std::is_same_v<T, SyncSnapshot>) return Tag::kSyncSnapshot;
        if constexpr (std::is_same_v<T, PresenceBatch>) return Tag::kPresenceBatch;
        if constexpr (std::is_same_v<T, Query>) return Tag::kQuery;
        if constexpr (std::is_same_v<T, QueryResult>) return Tag::kQueryResult;
        if constexpr (std::is_same_v<T, EpochNotice>) return Tag::kEpochNotice;
      },
      m);
}

bool valid_status(std::uint8_t s) {
  return s <= static_cast<std::uint8_t>(QueryStatus::kZoneUnavailable);
}

std::optional<Message> decode_body(Tag tag, Reader& r) {
  switch (tag) {
    case Tag::kLoginRequest: {
      if (r.u8() != kSessionWireVersion) return std::nullopt;
      LoginRequest m;
      m.bd_addr = r.u64();
      m.userid = r.str();
      m.password = r.str();
      m.prior_epoch = r.u32();
      return m;
    }
    case Tag::kLoginReply: {
      if (r.u8() != kSessionWireVersion) return std::nullopt;
      LoginReply m;
      m.bd_addr = r.u64();
      m.ok = r.boolean();
      m.reason = r.str();
      m.server_epoch = r.u32();
      return m;
    }
    case Tag::kLogoutRequest: {
      LogoutRequest m;
      m.bd_addr = r.u64();
      m.userid = r.str();
      return m;
    }
    case Tag::kLogoutReply: {
      LogoutReply m;
      m.bd_addr = r.u64();
      m.ok = r.boolean();
      return m;
    }
    case Tag::kPresenceUpdate: {
      PresenceUpdate m;
      m.workstation = r.u32();
      m.bd_addr = r.u64();
      m.present = r.boolean();
      m.timestamp_ns = r.i64();
      m.seq = r.u64();
      m.rssi_dbm = r.f64();
      return m;
    }
    case Tag::kPresenceAck: {
      PresenceAck m;
      m.workstation = r.u32();
      m.seq = r.u64();
      m.server_epoch = r.u32();
      return m;
    }
    case Tag::kWhoIsInRequest: {
      WhoIsInRequest m;
      m.query_id = r.u32();
      m.requester_bd_addr = r.u64();
      m.room = r.str();
      return m;
    }
    case Tag::kWhoIsInReply: {
      WhoIsInReply m;
      m.query_id = r.u32();
      const std::uint8_t s = r.u8();
      if (!valid_status(s)) return std::nullopt;
      m.status = static_cast<QueryStatus>(s);
      const std::uint16_t n = r.u16();
      m.users.reserve(n);
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) m.users.push_back(r.str());
      return m;
    }
    case Tag::kHistoryRequest: {
      HistoryRequest m;
      m.query_id = r.u32();
      m.requester_bd_addr = r.u64();
      m.target_user = r.str();
      m.at_time_ns = r.i64();
      return m;
    }
    case Tag::kHistoryReply: {
      HistoryReply m;
      m.query_id = r.u32();
      const std::uint8_t s = r.u8();
      if (!valid_status(s)) return std::nullopt;
      m.status = static_cast<QueryStatus>(s);
      m.was_present = r.boolean();
      m.room = r.str();
      m.since_ns = r.i64();
      return m;
    }
    case Tag::kSubscribeRequest: {
      SubscribeRequest m;
      m.query_id = r.u32();
      m.requester_bd_addr = r.u64();
      m.target_user = r.str();
      m.unsubscribe = r.boolean();
      return m;
    }
    case Tag::kSubscribeReply: {
      SubscribeReply m;
      m.query_id = r.u32();
      const std::uint8_t s = r.u8();
      if (!valid_status(s)) return std::nullopt;
      m.status = static_cast<QueryStatus>(s);
      return m;
    }
    case Tag::kHeartbeat: {
      Heartbeat m;
      m.workstation = r.u32();
      m.timestamp_ns = r.i64();
      return m;
    }
    case Tag::kHeartbeatAck: {
      HeartbeatAck m;
      m.server_epoch = r.u32();
      return m;
    }
    case Tag::kEpochNotice: {
      EpochNotice m;
      m.server_epoch = r.u32();
      return m;
    }
    case Tag::kSyncRequest: {
      SyncRequest m;
      m.server_epoch = r.u32();
      m.timestamp_ns = r.i64();
      return m;
    }
    case Tag::kSyncSnapshot: {
      SyncSnapshot m;
      m.workstation = r.u32();
      m.server_epoch = r.u32();
      m.timestamp_ns = r.i64();
      const std::uint16_t np = r.u16();
      m.present.reserve(np);
      for (std::uint16_t i = 0; i < np && r.ok(); ++i) {
        SyncPresence p;
        p.bd_addr = r.u64();
        p.rssi_dbm = r.f64();
        m.present.push_back(p);
      }
      const std::uint16_t ns = r.u16();
      m.sessions.reserve(ns);
      for (std::uint16_t i = 0; i < ns && r.ok(); ++i) {
        SyncSession s;
        s.bd_addr = r.u64();
        s.userid = r.str();
        m.sessions.push_back(s);
      }
      return m;
    }
    case Tag::kMovementEvent: {
      MovementEvent m;
      m.subscriber_bd_addr = r.u64();
      m.target_user = r.str();
      m.entered = r.boolean();
      m.room = r.str();
      m.timestamp_ns = r.i64();
      return m;
    }
    case Tag::kWhereIsRequest: {
      WhereIsRequest m;
      m.query_id = r.u32();
      m.requester_bd_addr = r.u64();
      m.target_user = r.str();
      return m;
    }
    case Tag::kWhereIsReply: {
      WhereIsReply m;
      m.query_id = r.u32();
      const std::uint8_t s = r.u8();
      if (!valid_status(s)) return std::nullopt;
      m.status = static_cast<QueryStatus>(s);
      m.room = r.str();
      return m;
    }
    case Tag::kPathRequest: {
      PathRequest m;
      m.query_id = r.u32();
      m.requester_bd_addr = r.u64();
      m.target_user = r.str();
      m.from_room = r.u32();
      return m;
    }
    case Tag::kPathReply: {
      PathReply m;
      m.query_id = r.u32();
      const std::uint8_t s = r.u8();
      if (!valid_status(s)) return std::nullopt;
      m.status = static_cast<QueryStatus>(s);
      const std::uint16_t n = r.u16();
      m.rooms.reserve(n);
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) m.rooms.push_back(r.str());
      m.distance = r.f64();
      return m;
    }
    case Tag::kPresenceBatch: {
      PresenceBatch m;
      m.workstation = r.u32();
      const std::uint16_t n = r.u16();
      m.updates.reserve(n);
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        PresenceUpdate u;
        u.workstation = r.u32();
        u.bd_addr = r.u64();
        u.present = r.boolean();
        u.timestamp_ns = r.i64();
        u.seq = r.u64();
        u.rssi_dbm = r.f64();
        m.updates.push_back(std::move(u));
      }
      return m;
    }
    case Tag::kQuery: {
      if (r.u8() != kQueryWireVersion) return std::nullopt;
      Query m;
      const std::uint8_t k = r.u8();
      if (k > static_cast<std::uint8_t>(Query::Kind::kHistorySince)) {
        return std::nullopt;
      }
      m.kind = static_cast<Query::Kind>(k);
      m.requester = r.str();
      m.target = r.str();
      m.from_station = r.u32();
      m.at_ns = r.i64();
      return m;
    }
    case Tag::kQueryResult: {
      if (r.u8() != kQueryWireVersion) return std::nullopt;
      QueryResult m;
      const std::uint8_t s = r.u8();
      if (!valid_status(s)) return std::nullopt;
      m.status = static_cast<QueryStatus>(s);
      m.room = r.str();
      const std::uint16_t nu = r.u16();
      m.users.reserve(nu);
      for (std::uint16_t i = 0; i < nu && r.ok(); ++i) m.users.push_back(r.str());
      const std::uint16_t nr = r.u16();
      m.rooms.reserve(nr);
      for (std::uint16_t i = 0; i < nr && r.ok(); ++i) m.rooms.push_back(r.str());
      m.distance = r.f64();
      m.was_present = r.boolean();
      m.since = SimTime(r.i64());
      const std::uint16_t nv = r.u16();
      m.visits.reserve(nv);
      for (std::uint16_t i = 0; i < nv && r.ok(); ++i) {
        QueryResult::Visit v;
        v.room = r.str();
        v.entered = r.boolean();
        v.at = SimTime(r.i64());
        m.visits.push_back(std::move(v));
      }
      return m;
    }
  }
  return std::nullopt;
}

}  // namespace

Bytes encode(const Message& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(tag_of(m)));
  std::visit([&w](const auto& v) { body(w, v); }, m);
  return w.take();
}

std::optional<Message> decode(const Bytes& data) {
  Reader r(data);
  const std::uint8_t raw_tag = r.u8();
  if (!r.ok()) return std::nullopt;
  if (raw_tag < 1 || raw_tag > kMaxTag) return std::nullopt;
  auto m = decode_body(static_cast<Tag>(raw_tag), r);
  if (!m || !r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

}  // namespace bips::proto
