// Dijkstra single-source shortest paths (paper ref [4]).
#pragma once

#include <limits>
#include <vector>

#include "src/graph/graph.hpp"

namespace bips::graph {

/// Result of a single-source run: distance and predecessor per node.
struct ShortestPathTree {
  NodeId source = kInvalidNode;
  std::vector<Weight> distance;  // +inf where unreachable
  std::vector<NodeId> parent;    // kInvalidNode at source / unreachable

  bool reachable(NodeId n) const {
    return distance[n] != std::numeric_limits<Weight>::infinity();
  }

  /// Reconstructs source -> target as a node sequence (inclusive); empty if
  /// the target is unreachable.
  std::vector<NodeId> path_to(NodeId target) const;
};

/// Runs Dijkstra from `source` with a binary heap: O((V+E) log V).
ShortestPathTree dijkstra(const Graph& g, NodeId source);

}  // namespace bips::graph
