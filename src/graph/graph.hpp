// Weighted undirected graph of the building topology.
//
// BIPS models the building as a graph with one node per workstation (i.e.
// per significant room) and an edge wherever a physical path connects two
// rooms; the weight is the walking distance (a positive integer in the
// paper; we allow any positive double, e.g. metres).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bips::graph {

/// Dense node index; assigned in insertion order.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Edge weight: a positive walking distance.
using Weight = double;

struct Edge {
  NodeId to = kInvalidNode;
  Weight weight = 0.0;
};

/// Undirected weighted graph with named nodes.
class Graph {
 public:
  /// Adds a node; returns its id. Names must be unique and non-empty.
  NodeId add_node(std::string name);

  /// Adds an undirected edge with positive weight. Parallel edges are
  /// permitted (Dijkstra simply takes the cheaper one); self-loops are not.
  void add_edge(NodeId a, NodeId b, Weight w);
  void add_edge(std::string_view a, std::string_view b, Weight w);

  std::size_t node_count() const { return names_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  const std::string& name(NodeId n) const;
  /// Looks a node up by name; nullopt if absent.
  std::optional<NodeId> find(std::string_view name) const;

  /// Adjacency list of a node.
  const std::vector<Edge>& neighbors(NodeId n) const;

  /// True if every node can reach every other node. BIPS requires a
  /// connected graph (the paper: "weighted undirected *connected* graph").
  bool connected() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<std::vector<Edge>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace bips::graph
