#include "src/graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

#include "src/util/assert.hpp"

namespace bips::graph {

std::vector<NodeId> ShortestPathTree::path_to(NodeId target) const {
  BIPS_ASSERT(target < distance.size());
  if (!reachable(target)) return {};
  std::vector<NodeId> path;
  for (NodeId n = target; n != kInvalidNode; n = parent[n]) path.push_back(n);
  std::reverse(path.begin(), path.end());
  BIPS_ASSERT(path.front() == source);
  return path;
}

ShortestPathTree dijkstra(const Graph& g, NodeId source) {
  BIPS_ASSERT(source < g.node_count());
  constexpr Weight kInf = std::numeric_limits<Weight>::infinity();

  ShortestPathTree tree;
  tree.source = source;
  tree.distance.assign(g.node_count(), kInf);
  tree.parent.assign(g.node_count(), kInvalidNode);
  tree.distance[source] = 0;

  using Entry = std::pair<Weight, NodeId>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [d, n] = heap.top();
    heap.pop();
    if (d > tree.distance[n]) continue;  // stale heap entry
    for (const Edge& e : g.neighbors(n)) {
      const Weight nd = d + e.weight;
      if (nd < tree.distance[e.to]) {
        tree.distance[e.to] = nd;
        tree.parent[e.to] = n;
        heap.emplace(nd, e.to);
      }
    }
  }
  return tree;
}

}  // namespace bips::graph
