#include "src/graph/graph.hpp"

#include <queue>

#include "src/util/assert.hpp"

namespace bips::graph {

NodeId Graph::add_node(std::string name) {
  BIPS_ASSERT_MSG(!name.empty(), "node name must be non-empty");
  BIPS_ASSERT_MSG(by_name_.find(name) == by_name_.end(),
                  "duplicate node name");
  const auto id = static_cast<NodeId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  adj_.emplace_back();
  return id;
}

void Graph::add_edge(NodeId a, NodeId b, Weight w) {
  BIPS_ASSERT(a < names_.size() && b < names_.size());
  BIPS_ASSERT_MSG(a != b, "self-loops are not allowed");
  BIPS_ASSERT_MSG(w > 0, "edge weight must be positive");
  adj_[a].push_back(Edge{b, w});
  adj_[b].push_back(Edge{a, w});
  ++edge_count_;
}

void Graph::add_edge(std::string_view a, std::string_view b, Weight w) {
  const auto na = find(a), nb = find(b);
  BIPS_ASSERT_MSG(na && nb, "add_edge by name: unknown node");
  add_edge(*na, *nb, w);
}

const std::string& Graph::name(NodeId n) const {
  BIPS_ASSERT(n < names_.size());
  return names_[n];
}

std::optional<NodeId> Graph::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const std::vector<Edge>& Graph::neighbors(NodeId n) const {
  BIPS_ASSERT(n < adj_.size());
  return adj_[n];
}

bool Graph::connected() const {
  if (names_.empty()) return true;
  std::vector<bool> seen(names_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    for (const Edge& e : adj_[n]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        frontier.push(e.to);
      }
    }
  }
  return visited == names_.size();
}

}  // namespace bips::graph
