#include "src/graph/all_pairs.hpp"

#include "src/util/assert.hpp"

namespace bips::graph {

AllPairsPaths::AllPairsPaths(const Graph& g) {
  trees_.reserve(g.node_count());
  for (NodeId n = 0; n < g.node_count(); ++n) trees_.push_back(dijkstra(g, n));
}

Weight AllPairsPaths::distance(NodeId a, NodeId b) const {
  BIPS_ASSERT(a < trees_.size() && b < trees_.size());
  return trees_[a].distance[b];
}

std::vector<NodeId> AllPairsPaths::path(NodeId a, NodeId b) const {
  BIPS_ASSERT(a < trees_.size() && b < trees_.size());
  return trees_[a].path_to(b);
}

NodeId AllPairsPaths::next_hop(NodeId a, NodeId b) const {
  BIPS_ASSERT(a < trees_.size() && b < trees_.size());
  if (a == b) return kInvalidNode;
  // The tree rooted at b stores parents pointing toward b, so the next hop
  // from a is simply a's parent in that tree.
  return trees_[b].parent[a];
}

}  // namespace bips::graph
