// Offline all-pairs shortest paths.
//
// The paper: "the static nature of BIPS wired network allows us to compute
// off-line all the shortest paths that connect all the possible pairs of two
// nodes. Hence the computation of the shortest path has no impact on BIPS
// online activities." This class is that offline step: V Dijkstra runs at
// construction, O(1) distance lookup and O(path) reconstruction online.
#pragma once

#include <vector>

#include "src/graph/dijkstra.hpp"
#include "src/graph/graph.hpp"

namespace bips::graph {

class AllPairsPaths {
 public:
  /// Precomputes a shortest-path tree per node. The graph must outlive any
  /// name-based queries made through helper functions, but the precomputed
  /// data itself is self-contained.
  explicit AllPairsPaths(const Graph& g);

  std::size_t node_count() const { return trees_.size(); }

  /// Shortest distance a -> b (+inf if disconnected).
  Weight distance(NodeId a, NodeId b) const;

  /// Full node sequence a -> b, inclusive; empty if unreachable.
  std::vector<NodeId> path(NodeId a, NodeId b) const;

  /// Next hop from a toward b (kInvalidNode if unreachable or a == b).
  /// Handhelds only display "head to room X next", so this is the query the
  /// online system actually serves.
  NodeId next_hop(NodeId a, NodeId b) const;

 private:
  std::vector<ShortestPathTree> trees_;
};

}  // namespace bips::graph
