#include "src/fault/invariants.hpp"

#include <cstdio>

#include "src/util/assert.hpp"

namespace bips::fault {

InvariantChecker::InvariantChecker(core::BipsSimulation& sim, Config cfg)
    : InvariantChecker(
          WorldView{
              [&sim] { return sim.simulator().now(); },
              [&sim] { return sim.workstation_count(); },
              [&sim](core::StationId s) -> core::BipsWorkstation& {
                return sim.workstation(s);
              },
              [&sim] { return sim.server().crashed(); },
              [&sim] { return sim.userids(); },
              [&sim](std::string_view uid) {
                const core::BipsClient* c = sim.client(uid);
                return c != nullptr && c->logged_in();
              },
              [&sim](std::string_view uid) { return sim.db_room(uid); },
              [&sim](std::string_view uid) { return sim.true_room(uid); },
          },
          std::move(cfg)) {
  timer_sim_ = &sim.simulator();
}

InvariantChecker::InvariantChecker(WorldView view, Config cfg)
    : view_(std::move(view)),
      cfg_(std::move(cfg)),
      stations_(view_.workstation_count()) {}

bool InvariantChecker::graded(core::StationId s) const {
  return !cfg_.station_filter || cfg_.station_filter(s);
}

void InvariantChecker::start() {
  BIPS_ASSERT_MSG(timer_sim_ != nullptr,
                  "start() needs the BipsSimulation form; view-based "
                  "checkers are sampled by their owner");
  if (!timer_) {
    timer_ = std::make_unique<sim::PeriodicTimer>(
        *timer_sim_, cfg_.sample_period, [this] { sample(); });
  }
  timer_->start();
}

void InvariantChecker::stop() {
  if (timer_) timer_->stop();
}

void InvariantChecker::violate(std::string msg) {
  // One chaos run can trip the same invariant every sample; keep the report
  // readable by dropping exact repeats.
  for (const std::string& v : violations_) {
    if (v == msg) return;
  }
  violations_.push_back(std::move(msg));
}

void InvariantChecker::sample() {
  ++samples_;
  const SimTime now = view_.now();
  char msg[192];

  const std::size_t nstations = view_.workstation_count();
  for (core::StationId s = 0; s < nstations; ++s) {
    core::BipsWorkstation& ws = view_.workstation(s);
    StationState& st = stations_[s];
    if (!graded(s)) {  // keep the bookkeeping, skip the grading
      st.last_seq = ws.presence_seq();
      st.last_epoch = ws.known_server_epoch();
      st.crashes = ws.stats().crashes;
      if (ws.crashed()) {
        if (!st.was_crashed) st.crashed_since = now;
        st.was_crashed = true;
      } else {
        st.was_crashed = false;
      }
      continue;
    }

    // Sequence numbers and the observed server epoch may only move forward
    // within one workstation incarnation; crash() legitimately resets both.
    const bool recycled = ws.stats().crashes != st.crashes;
    if (!recycled) {
      if (ws.presence_seq() < st.last_seq) {
        std::snprintf(msg, sizeof msg,
                      "t=%.1fs station %u presence seq regressed %llu -> %llu",
                      now.to_seconds(), s,
                      static_cast<unsigned long long>(st.last_seq),
                      static_cast<unsigned long long>(ws.presence_seq()));
        violate(msg);
      }
      if (ws.known_server_epoch() < st.last_epoch) {
        std::snprintf(msg, sizeof msg,
                      "t=%.1fs station %u server epoch regressed %u -> %u",
                      now.to_seconds(), s, st.last_epoch,
                      ws.known_server_epoch());
        violate(msg);
      }
    }
    st.last_seq = ws.presence_seq();
    st.last_epoch = ws.known_server_epoch();
    st.crashes = ws.stats().crashes;

    // Track how long each station has been continuously dead.
    if (ws.crashed()) {
      if (!st.was_crashed) st.crashed_since = now;
      st.was_crashed = true;
    } else {
      st.was_crashed = false;
    }
  }

  // Nobody may stay located at a long-dead station. The server's failure
  // detector is the only component that can clean these records up (the
  // dead station cannot report absences), so give it its bound plus slack.
  if (!view_.server_crashed()) {
    for (const std::string& userid : view_.userids()) {
      const auto room = view_.db_room(userid);
      if (!room || !graded(*room)) continue;
      const StationState& st = stations_[*room];
      if (st.was_crashed && now - st.crashed_since > cfg_.dead_station_grace) {
        std::snprintf(msg, sizeof msg,
                      "t=%.1fs user %s still located at station %u, dead for "
                      "%.1fs (> %.1fs grace)",
                      now.to_seconds(), userid.c_str(), *room,
                      (now - st.crashed_since).to_seconds(),
                      cfg_.dead_station_grace.to_seconds());
        violate(msg);
      }
    }
  }
}

void InvariantChecker::check_converged() {
  const SimTime now = view_.now();
  char msg[192];
  for (const std::string& userid : view_.userids()) {
    if (!view_.logged_in(userid)) continue;
    const auto room = view_.db_room(userid);
    const mobility::RoomId truth = view_.true_room(userid);
    if (truth != mobility::kNoRoom && !room &&
        graded(static_cast<core::StationId>(truth))) {
      std::snprintf(msg, sizeof msg,
                    "t=%.1fs converged check: logged-in user %s stands in "
                    "room %u but the location DB has no record",
                    now.to_seconds(), userid.c_str(), truth);
      violate(msg);
    }
    if (room && graded(*room) && view_.workstation(*room).crashed()) {
      std::snprintf(msg, sizeof msg,
                    "t=%.1fs converged check: user %s located at crashed "
                    "station %u",
                    now.to_seconds(), userid.c_str(), *room);
      violate(msg);
    }
  }
}

}  // namespace bips::fault
