// Safety and convergence invariants for fault-injected runs.
//
// The InvariantChecker samples a running BipsSimulation and records every
// violation of the recovery contract as a human-readable string:
//
//  * presence sequence numbers never regress within a workstation
//    incarnation (a regression without an intervening crash() means the
//    reliable delta stream is corrupt);
//  * a workstation's view of the server epoch never moves backwards within
//    an incarnation (epochs are monotonic by construction);
//  * no user stays located at a station that has been dead longer than the
//    failure-detector bound -- a dead station can never report its own
//    absences, so only the server's sweep can tell the truth;
//  * after the plan heals (check_converged()), every logged-in user who is
//    physically inside some piconet is located again, and nobody is located
//    at a crashed station.
//
// Violations accumulate instead of asserting so one chaos run reports every
// broken invariant at once.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/simulation.hpp"

namespace bips::fault {

class InvariantChecker {
 public:
  /// Everything the checker needs to observe a world, as callables -- so
  /// the same grading runs against a monolithic BipsSimulation (sampled by
  /// an in-simulation timer) or a ShardedBipsSimulation (sampled at window
  /// barriers, where every shard is quiescent and cross-shard reads are
  /// safe). All callables must stay valid for the checker's lifetime.
  struct WorldView {
    std::function<SimTime()> now;
    std::function<std::size_t()> workstation_count;
    std::function<core::BipsWorkstation&(core::StationId)> workstation;
    std::function<bool()> server_crashed;
    std::function<std::vector<std::string>()> userids;
    std::function<bool(std::string_view)> logged_in;
    std::function<std::optional<core::StationId>(std::string_view)> db_room;
    std::function<mobility::RoomId(std::string_view)> true_room;
  };

  struct Config {
    /// How often the running invariants are sampled.
    Duration sample_period = Duration::seconds(1);
    /// A station continuously dead for longer than this must have no
    /// presence records left in the location database. Must exceed the
    /// server's station_timeout + sweep_period (plus slack for a server
    /// outage that delays the sweep).
    Duration dead_station_grace = Duration::seconds(30);
    /// When set, only stations (and users whose records point at stations)
    /// accepted by the filter are graded. The per-shard chaos tests run one
    /// checker per location-service zone with
    /// `filter = [&](StationId s) { return svc.zone_of(s) == k; }` so a
    /// deliberately crashed shard's own degradation does not drown out a
    /// genuine violation in a zone that was supposed to stay healthy.
    std::function<bool(core::StationId)> station_filter;
  };

  // No `cfg = Config{}` default argument: the nested class' member
  // initializers are only complete at the end of InvariantChecker.
  explicit InvariantChecker(core::BipsSimulation& sim)
      : InvariantChecker(sim, Config{}) {}
  InvariantChecker(core::BipsSimulation& sim, Config cfg);
  /// View-based construction: the caller owns the sampling cadence and
  /// drives sample() itself (the sharded harness calls it from its barrier
  /// hook). start()/stop() are unavailable on this form.
  InvariantChecker(WorldView view, Config cfg);

  /// Starts periodic sampling (call before running the faulted window).
  /// Only on the BipsSimulation form, which owns an in-simulation timer.
  void start();
  void stop();

  /// Takes one sample of the running invariants now. The timer path calls
  /// this every sample_period; view-based callers invoke it directly at
  /// deterministic instants of their choosing.
  void sample();

  /// End-of-run convergence check; call only after the fault plan has
  /// healed and the recovery bound has elapsed.
  void check_converged();

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t samples() const { return samples_; }

 private:
  struct StationState {
    std::uint64_t last_seq = 0;
    std::uint32_t last_epoch = 0;
    std::uint64_t crashes = 0;   // stats().crashes at the last sample
    bool was_crashed = false;
    SimTime crashed_since = SimTime::zero();
  };

  void violate(std::string msg);
  bool graded(core::StationId s) const;

  WorldView view_;
  /// Set only by the BipsSimulation form (hosts the sampling timer).
  sim::Simulator* timer_sim_ = nullptr;
  Config cfg_;
  std::vector<StationState> stations_;
  std::uint64_t samples_ = 0;
  std::vector<std::string> violations_;
  std::unique_ptr<sim::PeriodicTimer> timer_;
};

}  // namespace bips::fault
