// Deterministic fault injection for a full BipsSimulation.
//
// A FaultPlan is a schedule of infrastructure failures -- workstation and
// server crashes/restarts, LAN partitions, loss bursts -- either scripted
// by hand (builder API) or generated from a seed (chaos()). Applying a plan
// schedules every fault on the simulation's event queue, so the whole run
// stays a deterministic function of the seed: a failing chaos seed replays
// bit-identically under a debugger.
//
// Every generated plan heals: each crash has a matching restart and each
// window ends, so heal_time() gives the instant after which the recovery
// invariants (see invariants.hpp) must reconverge.
//
// Plans apply to the monolithic simulation (apply) or the sharded one
// (apply_sharded). The sharded application splits the schedule by owner:
// shard-local directives (station crash/restart, link loss, loss bursts,
// partitions, per-station chaos) become exact-time events inside the
// owning shard's windows, while barrier-class directives touching only
// shard-0 state (server crash/restart, location-shard crash/restart) are
// exact-time events on shard 0 -- which the kernel always executes
// single-threaded with respect to that shard's state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/simulation.hpp"

namespace bips::core {
class ShardedBipsSimulation;
}

namespace bips::fault {

/// One scheduled fault. Times are relative to the instant the plan is
/// applied (normally t=0, before the simulation starts).
struct FaultEvent {
  enum class Kind {
    kStationCrash,    // `station` powers off at `at`
    kStationRestart,  // `station` powers back on at `at`
    kServerCrash,     // the central server dies at `at`
    kServerRestart,   // ... and resyncs at `at`
    kPartition,       // `group` stations cut from the rest + server for `span`
    kLossBurst,       // uniform LAN loss raised to `loss` for `span`
    kLinkLoss,        // `station` <-> server link loss set to `loss` for `span`
    kShardCrash,      // location shard `zone` dies at `at`
    kShardRestart,    // ... and resyncs its zone at `at`
  };

  Kind kind;
  Duration at = Duration(0);
  core::StationId station = core::kNoStation;  // station faults / link loss
  std::vector<core::StationId> group;          // kPartition
  Duration span = Duration(0);                 // windowed faults
  double loss = 0.0;                           // kLossBurst / kLinkLoss
  std::size_t zone = 0;                        // kShardCrash / kShardRestart
};

/// Knobs for the seeded chaos generator.
struct ChaosParams {
  /// No fault fires before this (lets the deployment boot and enroll).
  Duration start = Duration::seconds(60);
  /// Faults are injected within [start, start + window).
  Duration window = Duration::seconds(90);
  /// Outage length of each crash / partition / burst, uniform in
  /// [min_outage, max_outage].
  Duration min_outage = Duration::seconds(5);
  Duration max_outage = Duration::seconds(20);
  int station_faults = 2;
  int server_faults = 1;
  int partitions = 1;
  int loss_bursts = 1;
  double burst_loss = 0.3;
};

class FaultPlan {
 public:
  // ---- builder API (times relative to apply()) --------------------------
  FaultPlan& crash_station(Duration at, core::StationId s);
  FaultPlan& restart_station(Duration at, core::StationId s);
  FaultPlan& crash_server(Duration at);
  FaultPlan& restart_server(Duration at);
  /// Cuts `group` off from every other station and the server during
  /// [at, at + span).
  FaultPlan& partition_stations(Duration at, Duration span,
                                std::vector<core::StationId> group);
  FaultPlan& loss_burst(Duration at, Duration span, double loss);
  /// Degrades only the `station` <-> server link during [at, at + span).
  FaultPlan& flaky_link(Duration at, Duration span, core::StationId station,
                        double loss);
  /// Crash-stops location shard `zone` (partial server fault) at `at`.
  FaultPlan& crash_shard(Duration at, std::size_t zone);
  /// Brings location shard `zone` back empty at `at` (zone-scoped resync).
  FaultPlan& restart_shard(Duration at, std::size_t zone);

  /// Seeded random plan over `station_count` stations. Same seed + params
  /// -> same plan; every fault heals by heal_time().
  static FaultPlan chaos(std::uint64_t seed, std::size_t station_count,
                         const ChaosParams& params = {});

  /// Appends every event of `other` (times stay relative to apply()); the
  /// scenario compiler uses this to fold seeded chaos blocks into the
  /// scripted schedule, keeping one plan per run.
  FaultPlan& merge(const FaultPlan& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Instant (relative to apply()) by which every fault has healed.
  Duration heal_time() const;

  /// Schedules every event on `sim`'s event queue. The simulation must
  /// outlive its scheduled events. May be called before start().
  void apply(core::BipsSimulation& sim) const;

  /// Schedules every event against a sharded simulation, split by owner
  /// (see the header comment): station faults fire on the owning zone's
  /// shard, server / location-shard faults on shard 0, and the windowed
  /// LAN faults (partition, loss burst, link loss) are mirrored onto every
  /// zone segment they affect. Call before start(), while the group is
  /// idle. Identical schedules at every thread count.
  void apply_sharded(core::ShardedBipsSimulation& sim) const;

  /// Human-readable schedule, one line per event (fault-drill narration).
  std::string describe() const;

 private:
  FaultPlan& add(FaultEvent e);

  std::vector<FaultEvent> events_;
};

}  // namespace bips::fault
