#include "src/fault/plan.hpp"

#include <algorithm>
#include <cstdio>

#include "src/core/parallel.hpp"
#include "src/util/rng.hpp"

namespace bips::fault {

namespace {
/// Emits one `fault` trace record at fire time: id = station (UINT32_MAX
/// for building-wide faults), a = FaultEvent::Kind, b = window span in ns,
/// x = loss probability. See DESIGN.md section 7.
void trace_fault_on(sim::Simulator& simr, FaultEvent::Kind kind,
                    core::StationId station = core::kNoStation,
                    Duration span = Duration(0), double loss = 0.0) {
  simr.obs().tracer.emit(simr.now(), obs::TraceKind::kFault, station,
                         static_cast<std::uint64_t>(kind),
                         static_cast<std::uint64_t>(span.ns()), loss);
}

void trace_fault(core::BipsSimulation& sim, FaultEvent::Kind kind,
                 core::StationId station = core::kNoStation,
                 Duration span = Duration(0), double loss = 0.0) {
  trace_fault_on(sim.simulator(), kind, station, span, loss);
}
}  // namespace

FaultPlan& FaultPlan::add(FaultEvent e) {
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::crash_station(Duration at, core::StationId s) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kStationCrash;
  e.at = at;
  e.station = s;
  return add(std::move(e));
}

FaultPlan& FaultPlan::restart_station(Duration at, core::StationId s) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kStationRestart;
  e.at = at;
  e.station = s;
  return add(std::move(e));
}

FaultPlan& FaultPlan::crash_server(Duration at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kServerCrash;
  e.at = at;
  return add(std::move(e));
}

FaultPlan& FaultPlan::restart_server(Duration at) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kServerRestart;
  e.at = at;
  return add(std::move(e));
}

FaultPlan& FaultPlan::partition_stations(Duration at, Duration span,
                                         std::vector<core::StationId> group) {
  BIPS_ASSERT(span > Duration(0));
  BIPS_ASSERT(!group.empty());
  FaultEvent e;
  e.kind = FaultEvent::Kind::kPartition;
  e.at = at;
  e.span = span;
  e.group = std::move(group);
  return add(std::move(e));
}

FaultPlan& FaultPlan::loss_burst(Duration at, Duration span, double loss) {
  BIPS_ASSERT(span > Duration(0));
  BIPS_ASSERT(loss >= 0.0 && loss <= 1.0);
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLossBurst;
  e.at = at;
  e.span = span;
  e.loss = loss;
  return add(std::move(e));
}

FaultPlan& FaultPlan::flaky_link(Duration at, Duration span,
                                 core::StationId station, double loss) {
  BIPS_ASSERT(span > Duration(0));
  BIPS_ASSERT(loss >= 0.0 && loss <= 1.0);
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkLoss;
  e.at = at;
  e.span = span;
  e.station = station;
  e.loss = loss;
  return add(std::move(e));
}

FaultPlan& FaultPlan::crash_shard(Duration at, std::size_t zone) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kShardCrash;
  e.at = at;
  e.zone = zone;
  return add(std::move(e));
}

FaultPlan& FaultPlan::restart_shard(Duration at, std::size_t zone) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kShardRestart;
  e.at = at;
  e.zone = zone;
  return add(std::move(e));
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, std::size_t station_count,
                           const ChaosParams& p) {
  BIPS_ASSERT(station_count > 0);
  BIPS_ASSERT(p.window > Duration(0));
  BIPS_ASSERT(Duration(0) < p.min_outage && p.min_outage <= p.max_outage);
  Rng rng(seed);
  FaultPlan plan;
  const auto instant = [&] {
    return p.start + Duration::nanos(static_cast<std::int64_t>(
                         rng.uniform(static_cast<std::uint64_t>(p.window.ns()))));
  };
  const auto outage = [&] {
    return Duration::nanos(rng.uniform_int(p.min_outage.ns(), p.max_outage.ns()));
  };
  for (int i = 0; i < p.station_faults; ++i) {
    const auto s = static_cast<core::StationId>(rng.uniform(station_count));
    const Duration at = instant();
    plan.crash_station(at, s);
    plan.restart_station(at + outage(), s);
  }
  for (int i = 0; i < p.server_faults; ++i) {
    const Duration at = instant();
    plan.crash_server(at);
    plan.restart_server(at + outage());
  }
  for (int i = 0; i < p.partitions; ++i) {
    // Isolate a random strict subset of the stations (at least one stays
    // connected so the building is never fully dark on the LAN side).
    const std::size_t max_group = std::max<std::size_t>(1, station_count / 2);
    const std::size_t n = 1 + rng.uniform(max_group);
    std::vector<core::StationId> group;
    for (std::size_t k = 0; k < n; ++k) {
      const auto s = static_cast<core::StationId>(rng.uniform(station_count));
      if (std::find(group.begin(), group.end(), s) == group.end()) {
        group.push_back(s);
      }
    }
    plan.partition_stations(instant(), outage(), std::move(group));
  }
  for (int i = 0; i < p.loss_bursts; ++i) {
    plan.loss_burst(instant(), outage(), p.burst_loss);
  }
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

FaultPlan& FaultPlan::merge(const FaultPlan& other) {
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  return *this;
}

Duration FaultPlan::heal_time() const {
  Duration heal(0);
  for (const FaultEvent& e : events_) {
    const Duration end =
        e.span > Duration(0) ? e.at + e.span : e.at;  // restarts are instants
    heal = std::max(heal, end);
  }
  return heal;
}

void FaultPlan::apply(core::BipsSimulation& sim) const {
  sim::Simulator& simr = sim.simulator();
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultEvent::Kind::kStationCrash:
        simr.schedule(e.at, [&sim, s = e.station] {
          trace_fault(sim, FaultEvent::Kind::kStationCrash, s);
          sim.workstation(s).crash();
        });
        break;
      case FaultEvent::Kind::kStationRestart:
        simr.schedule(e.at, [&sim, s = e.station] {
          trace_fault(sim, FaultEvent::Kind::kStationRestart, s);
          sim.workstation(s).restart();
        });
        break;
      case FaultEvent::Kind::kServerCrash:
        simr.schedule(e.at, [&sim] {
          trace_fault(sim, FaultEvent::Kind::kServerCrash);
          sim.server().crash();
        });
        break;
      case FaultEvent::Kind::kServerRestart:
        simr.schedule(e.at, [&sim] {
          trace_fault(sim, FaultEvent::Kind::kServerRestart);
          sim.server().restart();
        });
        break;
      case FaultEvent::Kind::kPartition:
        // Resolve LAN addresses lazily: the plan may be built before the
        // deployment, and the cut must reflect the topology at fire time.
        simr.schedule(e.at, [&sim, group = e.group, span = e.span] {
          trace_fault(sim, FaultEvent::Kind::kPartition, core::kNoStation,
                      span);
          std::vector<net::Address> isolated;
          isolated.reserve(group.size());
          for (const core::StationId s : group) {
            isolated.push_back(sim.workstation(s).lan_address());
          }
          std::vector<net::Address> rest;
          rest.push_back(sim.server().address());
          for (core::StationId s = 0; s < sim.workstation_count(); ++s) {
            if (std::find(group.begin(), group.end(), s) == group.end()) {
              rest.push_back(sim.workstation(s).lan_address());
            }
          }
          const SimTime now = sim.simulator().now();
          sim.lan().partition(std::move(isolated), std::move(rest), now,
                              now + span);
        });
        break;
      case FaultEvent::Kind::kLossBurst:
        simr.schedule(e.at, [&sim, loss = e.loss, span = e.span] {
          trace_fault(sim, FaultEvent::Kind::kLossBurst, core::kNoStation,
                      span, loss);
          const double before = sim.lan().loss();
          sim.lan().set_loss(loss);
          sim.simulator().schedule(span,
                                   [&sim, before] { sim.lan().set_loss(before); });
        });
        break;
      case FaultEvent::Kind::kLinkLoss:
        simr.schedule(e.at, [&sim, s = e.station, loss = e.loss, span = e.span] {
          trace_fault(sim, FaultEvent::Kind::kLinkLoss, s, span, loss);
          const net::Address ws = sim.workstation(s).lan_address();
          const net::Address srv = sim.server().address();
          sim.lan().set_link_loss(ws, srv, loss);
          sim.simulator().schedule(span, [&sim, ws, srv] {
            sim.lan().set_link_loss(ws, srv, 0.0);
          });
        });
        break;
      case FaultEvent::Kind::kShardCrash:
        simr.schedule(e.at, [&sim, z = e.zone] {
          trace_fault(sim, FaultEvent::Kind::kShardCrash,
                      static_cast<core::StationId>(z));
          sim.server().crash_shard(z);
        });
        break;
      case FaultEvent::Kind::kShardRestart:
        simr.schedule(e.at, [&sim, z = e.zone] {
          trace_fault(sim, FaultEvent::Kind::kShardRestart,
                      static_cast<core::StationId>(z));
          sim.server().restart_shard(z);
        });
        break;
    }
  }
}

void FaultPlan::apply_sharded(core::ShardedBipsSimulation& sim) const {
  const std::size_t shards = sim.shard_count();
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultEvent::Kind::kStationCrash: {
        // Shard-local: the station's whole stack lives on its zone's shard.
        sim::Simulator& z = sim.shard_simulator(sim.shard_of_station(e.station));
        z.schedule(e.at, [&sim, &z, s = e.station] {
          trace_fault_on(z, FaultEvent::Kind::kStationCrash, s);
          sim.workstation(s).crash();
        });
        break;
      }
      case FaultEvent::Kind::kStationRestart: {
        sim::Simulator& z = sim.shard_simulator(sim.shard_of_station(e.station));
        z.schedule(e.at, [&sim, &z, s = e.station] {
          trace_fault_on(z, FaultEvent::Kind::kStationRestart, s);
          sim.workstation(s).restart();
        });
        break;
      }
      case FaultEvent::Kind::kServerCrash: {
        // Barrier-class: every structure the crash wipes lives on shard 0,
        // whose events the kernel runs single-threaded w.r.t. that state.
        // The zone agents mirror the crash at the next window barrier.
        sim::Simulator& z0 = sim.shard_simulator(0);
        z0.schedule(e.at, [&sim, &z0] {
          trace_fault_on(z0, FaultEvent::Kind::kServerCrash);
          sim.server().crash();
        });
        break;
      }
      case FaultEvent::Kind::kServerRestart: {
        sim::Simulator& z0 = sim.shard_simulator(0);
        z0.schedule(e.at, [&sim, &z0] {
          trace_fault_on(z0, FaultEvent::Kind::kServerRestart);
          sim.server().restart();
        });
        break;
      }
      case FaultEvent::Kind::kShardCrash: {
        sim::Simulator& z0 = sim.shard_simulator(0);
        z0.schedule(e.at, [&sim, &z0, z = e.zone] {
          trace_fault_on(z0, FaultEvent::Kind::kShardCrash,
                         static_cast<core::StationId>(z));
          sim.server().crash_shard(z);
        });
        break;
      }
      case FaultEvent::Kind::kShardRestart: {
        sim::Simulator& z0 = sim.shard_simulator(0);
        z0.schedule(e.at, [&sim, &z0, z = e.zone] {
          trace_fault_on(z0, FaultEvent::Kind::kShardRestart,
                         static_cast<core::StationId>(z));
          sim.server().restart_shard(z);
        });
        break;
      }
      case FaultEvent::Kind::kPartition:
        // A partition is sender-side state: mirror the cut onto every zone
        // segment with the *global* address lists, and the datagram dies on
        // whichever segment its sender lives on (deliver_remote re-checks
        // nothing, so no fault is ever drawn twice). The zone agents'
        // addresses travel with the server side: an isolated station loses
        // its local presence path exactly as it loses the server uplink.
        for (std::size_t k = 0; k < shards; ++k) {
          sim::Simulator& z = sim.shard_simulator(k);
          z.schedule(e.at, [&sim, &z, k, group = e.group, span = e.span] {
            if (k == 0) {
              trace_fault_on(z, FaultEvent::Kind::kPartition,
                             core::kNoStation, span);
            }
            std::vector<net::Address> isolated;
            isolated.reserve(group.size());
            for (const core::StationId s : group) {
              isolated.push_back(sim.workstation(s).lan_address());
            }
            std::vector<net::Address> rest;
            rest.push_back(sim.server().address());
            for (core::StationId s = 0; s < sim.workstation_count(); ++s) {
              if (std::find(group.begin(), group.end(), s) == group.end()) {
                rest.push_back(sim.workstation(s).lan_address());
              }
            }
            for (const net::Address a : sim.ingest_addresses()) {
              rest.push_back(a);
            }
            const SimTime now = z.now();
            sim.shard_lan(k).partition(std::move(isolated), std::move(rest),
                                       now, now + span);
          });
        }
        break;
      case FaultEvent::Kind::kLossBurst:
        // Uniform loss is per-segment state: raise it on every zone's LAN
        // and restore each segment's own prior setting.
        for (std::size_t k = 0; k < shards; ++k) {
          sim::Simulator& z = sim.shard_simulator(k);
          z.schedule(e.at, [&sim, &z, k, loss = e.loss, span = e.span] {
            if (k == 0) {
              trace_fault_on(z, FaultEvent::Kind::kLossBurst,
                             core::kNoStation, span, loss);
            }
            const double before = sim.shard_lan(k).loss();
            sim.shard_lan(k).set_loss(loss);
            z.schedule(span,
                       [&sim, k, before] { sim.shard_lan(k).set_loss(before); });
          });
        }
        break;
      case FaultEvent::Kind::kLinkLoss: {
        // The station->server leg originates on the station's segment; the
        // server->station replies originate on shard 0's. Degrade both ends
        // (set_link_loss keys on the unordered global address pair). The
        // station's presence path to its *zone agent* is intentionally
        // unaffected -- this fault models the uplink, not the zone LAN.
        const std::size_t ks = sim.shard_of_station(e.station);
        const auto degrade = [&sim, s = e.station](std::size_t k, double loss,
                                                   Duration span,
                                                   sim::Simulator& z) {
          const net::Address ws = sim.workstation(s).lan_address();
          const net::Address srv = sim.server().address();
          sim.shard_lan(k).set_link_loss(ws, srv, loss);
          z.schedule(span, [&sim, k, ws, srv] {
            sim.shard_lan(k).set_link_loss(ws, srv, 0.0);
          });
        };
        sim::Simulator& zs = sim.shard_simulator(ks);
        zs.schedule(e.at, [&zs, degrade, ks, s = e.station, loss = e.loss,
                           span = e.span] {
          trace_fault_on(zs, FaultEvent::Kind::kLinkLoss, s, span, loss);
          degrade(ks, loss, span, zs);
        });
        if (ks != 0) {
          sim::Simulator& z0 = sim.shard_simulator(0);
          z0.schedule(e.at, [&z0, degrade, loss = e.loss, span = e.span] {
            degrade(0, loss, span, z0);
          });
        }
        break;
      }
    }
  }
}

std::string FaultPlan::describe() const {
  std::string out;
  char line[160];
  for (const FaultEvent& e : events_) {
    const double at_s = e.at.to_seconds();
    const double span_s = e.span.to_seconds();
    switch (e.kind) {
      case FaultEvent::Kind::kStationCrash:
        std::snprintf(line, sizeof line, "t=%6.1fs  station %u crashes\n",
                      at_s, e.station);
        break;
      case FaultEvent::Kind::kStationRestart:
        std::snprintf(line, sizeof line, "t=%6.1fs  station %u restarts\n",
                      at_s, e.station);
        break;
      case FaultEvent::Kind::kServerCrash:
        std::snprintf(line, sizeof line, "t=%6.1fs  SERVER crashes\n", at_s);
        break;
      case FaultEvent::Kind::kServerRestart:
        std::snprintf(line, sizeof line, "t=%6.1fs  SERVER restarts\n", at_s);
        break;
      case FaultEvent::Kind::kPartition: {
        std::string members;
        for (const core::StationId s : e.group) {
          members += (members.empty() ? "" : ",") + std::to_string(s);
        }
        std::snprintf(line, sizeof line,
                      "t=%6.1fs  partition {%s} from LAN for %.1fs\n", at_s,
                      members.c_str(), span_s);
        break;
      }
      case FaultEvent::Kind::kLossBurst:
        std::snprintf(line, sizeof line,
                      "t=%6.1fs  LAN loss burst %.0f%% for %.1fs\n", at_s,
                      e.loss * 100.0, span_s);
        break;
      case FaultEvent::Kind::kLinkLoss:
        std::snprintf(line, sizeof line,
                      "t=%6.1fs  station %u uplink %.0f%% loss for %.1fs\n",
                      at_s, e.station, e.loss * 100.0, span_s);
        break;
      case FaultEvent::Kind::kShardCrash:
        std::snprintf(line, sizeof line,
                      "t=%6.1fs  location shard %zu crashes\n", at_s, e.zone);
        break;
      case FaultEvent::Kind::kShardRestart:
        std::snprintf(line, sizeof line,
                      "t=%6.1fs  location shard %zu restarts\n", at_s, e.zone);
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace bips::fault
