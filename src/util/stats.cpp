#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assert.hpp"

namespace bips {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) { *this = o; return; }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(o.n_);
  m2_ += o.m2_ + delta * delta * n * m / (n + m);
  mean_ += delta * m / (n + m);
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  BIPS_ASSERT(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::ci95_halfwidth() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

double SampleSet::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  BIPS_ASSERT(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    std::snprintf(buf, sizeof buf, "[%8.3f, %8.3f) %6zu |", bin_low(i),
                  bin_high(i), counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace bips
