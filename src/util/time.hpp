// Simulation time types.
//
// The Bluetooth baseband is driven by a 3.2 kHz native clock whose cycle is
// 312.5 us -- not an integer number of microseconds. We therefore use a
// nanosecond time base (int64_t), in which every quantity the paper quotes is
// exact:
//
//   half slot (1 clock cycle)  312.5 us  = 312'500 ns
//   slot                       625   us  = 625'000 ns
//   train length (16 slots)    10    ms
//   N_inquiry * train          2.56  s
//   T_w_inquiry_scan           11.25 ms
//   T_inquiry_scan             1.28  s
//
// Duration is a strong type (not a raw int64_t) so that slot counts, channel
// indices and times cannot be accidentally mixed. SimTime is an absolute
// instant measured from simulation start.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace bips {

/// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t u) { return Duration(u * 1000); }
  static constexpr Duration millis(std::int64_t m) { return Duration(m * 1'000'000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000); }
  /// Construct from a floating-point second count (rounded to nearest ns).
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr std::int64_t operator/(Duration o) const { return ns_ / o.ns_; }
  constexpr Duration operator%(Duration o) const { return Duration(ns_ % o.ns_); }
  Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

/// An absolute simulated instant (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime max() { return SimTime(INT64_MAX); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.ns()); }
  constexpr Duration operator-(SimTime o) const { return Duration(ns_ - o.ns_); }
  SimTime& operator+=(Duration d) { ns_ += d.ns(); return *this; }

 private:
  std::int64_t ns_ = 0;
};

// --- Bluetooth baseband timing constants (spec v1.1, quoted in the paper) ---

/// One native clock cycle: 312.5 us. The Bluetooth clock runs at 3.2 kHz.
inline constexpr Duration kHalfSlot = Duration::nanos(312'500);
/// One baseband slot: 625 us (two clock cycles).
inline constexpr Duration kSlot = Duration::nanos(625'000);
/// One inquiry/page train: 16 slots = 10 ms (8 TX slots covering 16 hops
/// interleaved with 8 RX slots).
inline constexpr Duration kTrain = 16 * kSlot;
/// Number of times a train is repeated before switching (N_inquiry = 256).
inline constexpr int kNInquiry = 256;
/// Dwell on one train: 256 * 10 ms = 2.56 s.
inline constexpr Duration kTrainDwell = kNInquiry * kTrain;
/// Default inquiry-scan window (T_w_inquiry_scan = 11.25 ms = 18 slots).
inline constexpr Duration kDefaultScanWindow = Duration::nanos(11'250'000);
/// Default inquiry-scan interval (T_inquiry_scan = 1.28 s).
inline constexpr Duration kDefaultScanInterval = Duration::millis(1280);
/// Worst-case error-free inquiry length quoted by the paper (3 switches).
inline constexpr Duration kMaxInquiryLength = Duration::from_seconds(10.24);

/// Renders a duration as a human-friendly string ("1.603 s", "11.25 ms").
std::string to_string(Duration d);
/// Renders an absolute time as seconds with millisecond precision.
std::string to_string(SimTime t);

inline std::string to_string(Duration d) {
  char buf[64];
  const double a = d.to_seconds() < 0 ? -d.to_seconds() : d.to_seconds();
  if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.4g s", d.to_seconds());
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.4g ms", d.to_seconds() * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g us", d.to_seconds() * 1e6);
  }
  return buf;
}

inline std::string to_string(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f s", t.to_seconds());
  return buf;
}

}  // namespace bips
