// Small 2-D geometry types shared by the radio channel (coverage circles)
// and the mobility models (building floor plans).
#pragma once

#include <cmath>

namespace bips {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double norm_sq() const { return x * x + y * y; }

  /// Unit vector in the same direction; zero vector stays zero.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance_sq(Vec2 a, Vec2 b) {
  return (a - b).norm_sq();
}

/// Linear interpolation a -> b at t in [0, 1].
inline constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

}  // namespace bips
