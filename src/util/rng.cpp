#include "src/util/rng.hpp"

#include <cmath>

namespace bips {

double Rng::exponential(double mean) {
  BIPS_ASSERT(mean > 0);
  // Guard against log(0): uniform_double() can return exactly 0.
  double u = uniform_double();
  while (u <= 0.0) u = uniform_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform_double();
  while (u1 <= 0.0) u1 = uniform_double();
  const double u2 = uniform_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

}  // namespace bips
