#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/util/assert.hpp"

namespace bips {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BIPS_ASSERT(!headers_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  BIPS_ASSERT_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TableWriter::add_row_values(const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string TableWriter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c + 1 != widths.size() ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

static std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string TableWriter::to_csv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      if (c + 1 != row.size()) out += ',';
    }
    out += '\n';
  };
  render(headers_);
  for (const auto& row : rows_) render(row);
  return out;
}

void TableWriter::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace bips
