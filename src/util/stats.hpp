// Statistics accumulators used by the measurement harness.
//
// RunningStats gives streaming mean/variance (Welford) without storing the
// samples; SampleSet stores samples for percentile queries; Histogram bins
// durations for the discovery-time distributions of Table 1 / Figure 2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.hpp"

namespace bips {

/// Streaming mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 if fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Half-width of the 95% confidence interval of the mean (normal
  /// approximation, 1.96 * s / sqrt(n)); 0 with fewer than two samples.
  double ci95_halfwidth() const;

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; supports exact percentiles. Used where the full
/// distribution matters (e.g. the discovery-time CDF of Figure 2).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(d.to_seconds()); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Exact percentile by linear interpolation, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Half-width of the 95% confidence interval of the mean.
  double ci95_halfwidth() const;

  /// Fraction of samples <= x; this *is* the empirical CDF plotted in
  /// Figure 2 when x sweeps over time.
  double cdf(double x) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so totals always match the sample count.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const { return bin_low(i + 1); }

  /// Renders a terminal bar chart, one row per bin.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bips
