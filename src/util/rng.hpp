// Deterministic random number generation.
//
// Every simulation owns exactly one Rng (or a tree of Rngs forked from one
// seed), so reruns with the same seed are bit-identical -- a property the
// test suite and the benchmark harness rely on. The engine is xoshiro256**,
// which is small, fast, and has no observable bias for the moderate draw
// counts we make.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/assert.hpp"

namespace bips {

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  /// Seeds the generator via splitmix64 so that nearby seeds give
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into 256 bits of state.
    auto next = [&seed] {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = next();
  }

  /// Forks an independent stream; used to give each simulated device its own
  /// generator while keeping the whole run a function of one master seed.
  Rng fork() { return Rng(next_u64()); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased).
  std::uint64_t uniform(std::uint64_t bound) {
    BIPS_ASSERT(bound > 0);
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    BIPS_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform_double() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached second value: simpler and
  /// deterministic under forking).
  double normal(double mean, double stddev);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace bips
