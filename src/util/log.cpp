#include "src/util/log.hpp"

#include <cstdio>

namespace bips {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::string* g_capture = nullptr;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }
void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }
std::string* set_log_capture(std::string* sink) {
  std::string* prev = g_capture;
  g_capture = sink;
  return prev;
}

void log_at(LogLevel level, SimTime t, const char* fmt, ...) {
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof msg, fmt, args);
  va_end(args);

  char line[1200];
  std::snprintf(line, sizeof line, "[%s %10.6f] %s\n", level_name(level),
                t.to_seconds(), msg);
  if (g_capture != nullptr) {
    *g_capture += line;
  } else {
    std::fputs(line, stderr);
  }
}

}  // namespace bips
