// Console table and CSV rendering for the benchmark harness.
//
// Every bench binary reproduces one paper table/figure; TableWriter prints
// the rows in the same layout the paper uses, and can also dump CSV so the
// series can be re-plotted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bips {

/// Column-aligned console table with an optional title.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with aligned columns and a header rule.
  std::string to_string() const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench output).
std::string fmt(double v, int precision = 4);
/// Formats a percentage ("94.8%").
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace bips
