// Lightweight always-on assertion macro for invariant checking.
//
// Unlike <cassert>, BIPS_ASSERT stays active in release builds: the
// simulator's correctness depends on state-machine invariants that are cheap
// to check and catastrophic to violate silently (a mis-scheduled baseband
// event corrupts every measurement downstream).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bips {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "BIPS_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace bips

#define BIPS_ASSERT(expr)                                         \
  do {                                                            \
    if (!(expr)) ::bips::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define BIPS_ASSERT_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) ::bips::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
