// Open-addressing hash map for hot lookup paths.
//
// A node-based std::unordered_map costs two or three dependent cache misses
// per probe (bucket array -> node pointer -> node). On the radio channel's
// per-transmission paths that is the dominant cost at building scale, so
// this provides the minimal alternative: power-of-two capacity, linear
// probing, 64-bit keys, and -- deliberately -- no erase. Callers that stop
// needing a value keep the slot and reset the value (the radio keeps
// emptied cell vectors and zeroed counters anyway, precisely to avoid
// alloc/erase churn), which keeps probing tombstone-free.
//
// Values must be movable; rehashing moves them. Pointers *into* a value
// (e.g. elements of a moved std::deque or std::vector) survive a rehash,
// but pointers to the value object itself do not -- hold such values by
// unique_ptr if their address must be stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/assert.hpp"

namespace bips {

template <typename V>
class FlatHashMap {
 public:
  FlatHashMap() { cells_.resize(kInitialCapacity); }

  /// Returns the value for `key`, default-constructing it on first use.
  V& operator[](std::uint64_t key) {
    if ((size_ + 1) * 4 > cells_.size() * 3) grow();
    Cell& c = probe(cells_, key);
    if (!c.used) {
      c.used = true;
      c.key = key;
      ++size_;
    }
    return c.value;
  }

  /// Returns the value for `key`, or nullptr if absent.
  V* find(std::uint64_t key) {
    Cell& c = probe(cells_, key);
    return c.used ? &c.value : nullptr;
  }
  const V* find(std::uint64_t key) const {
    const Cell& c = probe(const_cast<std::vector<Cell>&>(cells_), key);
    return c.used ? &c.value : nullptr;
  }

  std::size_t size() const { return size_; }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Cell& c : cells_) {
      if (c.used) fn(c.key, c.value);
    }
  }

 private:
  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  struct Cell {
    std::uint64_t key = 0;
    V value{};
    bool used = false;
  };

  // Fibonacci multiplicative hash: channel keys have structure in the low
  // bits, so spread them before masking.
  static std::size_t slot_for(std::uint64_t key, std::size_t capacity) {
    return static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ull) &
           (capacity - 1);
  }

  static Cell& probe(std::vector<Cell>& cells, std::uint64_t key) {
    std::size_t i = slot_for(key, cells.size());
    for (;;) {
      Cell& c = cells[i];
      if (!c.used || c.key == key) return c;
      i = (i + 1) & (cells.size() - 1);
    }
  }

  void grow() {
    std::vector<Cell> bigger(cells_.size() * 2);
    for (Cell& c : cells_) {
      if (!c.used) continue;
      Cell& dst = probe(bigger, c.key);
      BIPS_ASSERT(!dst.used);
      dst.used = true;
      dst.key = c.key;
      dst.value = std::move(c.value);
    }
    cells_.swap(bigger);
  }

  std::vector<Cell> cells_;
  std::size_t size_ = 0;
};

}  // namespace bips
