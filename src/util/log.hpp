// Minimal leveled logger.
//
// Simulation components log through this instead of writing to stderr so
// tests can silence or capture output. The logger is global but the level
// check is a single atomic load, so logging disabled costs ~nothing.
#pragma once

#include <atomic>
#include <cstdarg>
#include <string>

#include "src/util/time.hpp"

namespace bips {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns the global minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style logging. `t` tags the message with simulated time.
void log_at(LogLevel level, SimTime t, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/// Captures log output into a string instead of stderr (single-threaded test
/// helper). Pass nullptr to restore stderr. Returns the previously installed
/// sink so nested captures (a crash handler inside an instrumented run) can
/// restore their outer capture instead of silently dropping it.
std::string* set_log_capture(std::string* sink);

#define BIPS_LOG(level, t, ...)                                    \
  do {                                                             \
    if (static_cast<int>(level) >= static_cast<int>(::bips::log_level())) \
      ::bips::log_at(level, t, __VA_ARGS__);                       \
  } while (0)

#define BIPS_TRACE(t, ...) BIPS_LOG(::bips::LogLevel::kTrace, t, __VA_ARGS__)
#define BIPS_DEBUG(t, ...) BIPS_LOG(::bips::LogLevel::kDebug, t, __VA_ARGS__)
#define BIPS_INFO(t, ...) BIPS_LOG(::bips::LogLevel::kInfo, t, __VA_ARGS__)
#define BIPS_WARN(t, ...) BIPS_LOG(::bips::LogLevel::kWarn, t, __VA_ARGS__)
#define BIPS_ERROR(t, ...) BIPS_LOG(::bips::LogLevel::kError, t, __VA_ARGS__)

}  // namespace bips
