// Operator tool: tune a workstation's discovery duty cycle.
//
// Given a room population and an operational cycle length (the mean piconet
// crossing time of your walkers), sweeps the continuous inquiry-slot length
// and reports what fraction of enrolling devices each slot catches -- the
// trade-off behind the paper's 3.84 s / 15.4 s recommendation.
//
//   $ ./discovery_tuning [n_devices] [cycle_seconds]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/baseband/inquiry.hpp"
#include "src/baseband/inquiry_scan.hpp"
#include "src/baseband/radio.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/table.hpp"

using namespace bips;

namespace {

/// Average fraction of `n` enrolling slaves a single inquiry slot finds.
double coverage(double slot_seconds, int n, int runs) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    sim::Simulator sim;
    Rng rng(0xD15C + static_cast<std::uint64_t>(slot_seconds * 1000) * 131 +
            static_cast<std::uint64_t>(r));
    baseband::RadioChannel radio(sim, rng, baseband::ChannelConfig{});
    baseband::Device master(sim, radio, baseband::BdAddr(0xA1), rng.fork());
    std::size_t found = 0;
    baseband::Inquirer inq(master, baseband::InquiryConfig{},
                           [&](const baseband::InquiryResponse&) { ++found; });
    std::vector<std::unique_ptr<baseband::Device>> devs;
    std::vector<std::unique_ptr<baseband::InquiryScanner>> scans;
    for (int i = 0; i < n; ++i) {
      devs.push_back(std::make_unique<baseband::Device>(
          sim, radio, baseband::BdAddr(0xB00 + i), rng.fork()));
      baseband::ScanConfig scan;
      scan.window = scan.interval = kDefaultScanInterval;  // enrolling mode
      scan.channel_mode = baseband::ScanChannelMode::kStickyTrain;
      scans.push_back(std::make_unique<baseband::InquiryScanner>(
          *devs.back(), scan, baseband::BackoffConfig{}));
      scans.back()->start();
    }
    inq.start();
    sim.run_until(SimTime(Duration::from_seconds(slot_seconds).ns()));
    total += static_cast<double>(found) / n;
  }
  return total / runs;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 20;
  const double cycle = argc > 2 ? std::atof(argv[2]) : 15.4;
  if (n < 1 || cycle <= 0) {
    std::fprintf(stderr, "usage: %s [n_devices >= 1] [cycle_seconds > 0]\n",
                 argv[0]);
    return 1;
  }

  std::printf("discovery tuning: %d enrolling devices, %.1f s operational "
              "cycle\n\n", n, cycle);
  TableWriter table({"inquiry slot (s)", "duty cycle", "devices found",
                     "verdict"});
  for (double slot : {0.64, 1.28, 2.56, 3.84, 5.12, 7.68}) {
    if (slot >= cycle) break;
    const double c = coverage(slot, n, 20);
    const char* verdict = c >= 0.99  ? "full coverage"
                          : c >= 0.90 ? "good (catches the rest next cycle)"
                          : c >= 0.60 ? "marginal"
                                      : "misses walkers crossing the room";
    table.add_row({fmt(slot, 2), fmt_pct(slot / cycle, 1), fmt_pct(c, 1),
                   verdict});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("the paper picks 3.84 s (one full train + one half dwell):\n"
              "~95%% of 20 devices at ~25%% duty -- the knee of this curve.\n");
  return 0;
}
