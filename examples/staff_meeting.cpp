// Convergence workload: the whole floor walks to a staff meeting.
//
// Eight users with agendas converge on the seminar room at t = 120 s --
// more people than one piconet has AM_ADDRs (7), so the workstation must
// park enrolled links to keep tracking everyone. Shows:
//   * who-is-in before, during and after the meeting,
//   * the seminar-room piconet's active/parked membership,
//   * the floor map with everyone clustered.
//
//   $ ./staff_meeting
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/simulation.hpp"
#include "src/mobility/render.hpp"

using namespace bips;

namespace {

void print_roll_call(core::BipsSimulation& sim, const char* when) {
  const auto rep = sim.server().query(
      core::BipsServer::Query::who_is_in("", "seminar-room"));
  std::printf("%-22s seminar-room holds %zu:", when, rep.users.size());
  for (const auto& u : rep.users) std::printf(" %s", u.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  core::SimulationConfig cfg;
  cfg.seed = 5;
  cfg.stagger_inquiry = true;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  const mobility::RoomId seminar = *sim.building().find("seminar-room");
  const char* names[] = {"Alice", "Bob",  "Carol", "Dave",
                         "Erin",  "Frank", "Grace", "Heidi"};

  std::vector<std::unique_ptr<mobility::AgendaAgent>> agendas;
  for (int i = 0; i < 8; ++i) {
    const std::string userid = "u" + std::to_string(i);
    const auto start =
        static_cast<mobility::RoomId>(i % sim.building().room_count());
    sim.add_user(names[i], userid, "pw", start);
    // Everyone's calendar says: seminar room, t = 120 s.
    agendas.push_back(std::make_unique<mobility::AgendaAgent>(
        sim.simulator(), sim.building(), sim.server().paths(),
        Rng(900 + i), start,
        std::vector<mobility::AgendaAgent::Appointment>{
            {SimTime(Duration::seconds(120).ns()), seminar}}));
    mobility::AgendaAgent* agent = agendas.back().get();
    sim.set_position_provider(userid, [agent] { return agent->position(); });
  }
  sim.start();
  for (auto& a : agendas) a->start();

  std::printf("enrolling the floor (meeting at t=120 s)...\n\n");
  sim.run_for(Duration::seconds(110));
  print_roll_call(sim, "t=110 s (before):");

  sim.run_for(Duration::seconds(150));  // everyone walks + gets re-tracked
  print_roll_call(sim, "t=260 s (meeting):");

  auto& pico = sim.workstation(seminar).scheduler().piconet();
  std::printf("\nseminar-room piconet: %zu members = %zu active + %zu "
              "parked (AM_ADDR limit: 7)\n",
              pico.slave_count(), pico.active_count(), pico.parked_count());
  std::printf("park/unpark operations so far: %llu/%llu\n",
              static_cast<unsigned long long>(pico.stats().parks),
              static_cast<unsigned long long>(pico.stats().unparks));

  std::vector<mobility::Marker> markers;
  char glyph = 'a';
  for (int i = 0; i < 8; ++i) {
    markers.push_back({glyph++, agendas[i]->position()});
  }
  mobility::RenderOptions ropts;
  ropts.meters_per_cell = 1.5;
  std::printf("\nfloor map during the meeting (users a..h; co-located\nmarkers overdraw each other at the seminar room):\n%s",
              mobility::render_map(sim.building(), markers, ropts).c_str());

  // The meeting ends: everyone wanders back to their desks by agenda-free
  // scripted dispersal (walk home = reverse appointment).
  std::printf("\nmeeting over; everyone returns...\n");
  std::vector<std::unique_ptr<mobility::AgendaAgent>> returns;
  for (int i = 0; i < 8; ++i) {
    const auto home =
        static_cast<mobility::RoomId>(i % sim.building().room_count());
    returns.push_back(std::make_unique<mobility::AgendaAgent>(
        sim.simulator(), sim.building(), sim.server().paths(),
        Rng(950 + i), seminar,
        std::vector<mobility::AgendaAgent::Appointment>{
            {sim.simulator().now() + Duration::seconds(5), home}}));
    mobility::AgendaAgent* agent = returns.back().get();
    sim.set_position_provider("u" + std::to_string(i),
                              [agent] { return agent->position(); });
    agent->start();
  }
  sim.run_for(Duration::seconds(120));
  print_roll_call(sim, "t=380 s (after):");
  return 0;
}
