// Extended-services demo: movement subscriptions, who-is-in, and temporal
// ("where was X at time T") queries -- the service layer a deployment would
// build on top of the paper's core tracking, all driven from a handheld.
//
// Also dumps the location database's transition history as CSV at the end
// (the audit trail / plotting hand-off).
//
//   $ ./office_watch
#include <cstdio>
#include <sstream>

#include "src/core/simulation.hpp"

using namespace bips;

int main() {
  core::SimulationConfig cfg;
  cfg.seed = 11;
  cfg.stagger_inquiry = true;  // neighbourly piconets
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.mobility.pause_min = Duration::seconds(10'000);  // scripted movement
  cfg.mobility.pause_max = Duration::seconds(20'000);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  sim.add_user("Alice", "alice", "pw-a", *sim.building().find("office-a"));
  sim.add_user("Bob", "bob", "pw-b", *sim.building().find("lobby"));
  sim.add_user("Carol", "carol", "pw-c", *sim.building().find("lobby"));

  Vec2 bob_pos = sim.building().room(*sim.building().find("lobby")).center;
  sim.client("bob")->device().set_position_provider([&] { return bob_pos; });

  std::printf("enrolling the floor...\n");
  sim.run_for(Duration::seconds(60));

  // Alice watches Bob.
  std::printf("\nalice subscribes to Bob's movements:\n");
  sim.client("alice")->subscribe(
      "Bob",
      [&](const proto::MovementEvent& ev) {
        std::printf("  [%7.2f s] notification: Bob %s %s\n",
                    Duration::nanos(ev.timestamp_ns).to_seconds(),
                    ev.entered ? "entered" : "left", ev.room.c_str());
      },
      [](const proto::SubscribeReply& r) {
        std::printf("  subscription: %s\n", proto::to_string(r.status));
      });
  sim.run_for(Duration::seconds(2));

  const SimTime before_move = sim.simulator().now();

  // Bob does a coffee run: lobby -> admin-office -> lobby.
  std::printf("\nBob wanders to the admin office and back...\n");
  bob_pos = sim.building().room(*sim.building().find("admin-office")).center;
  sim.run_for(Duration::seconds(40));
  bob_pos = sim.building().room(*sim.building().find("lobby")).center;
  sim.run_for(Duration::seconds(40));

  // Who shares the lobby with Bob right now?
  std::printf("\nalice asks who is in the lobby:\n");
  sim.client("alice")->who_is_in("lobby", [](const proto::WhoIsInReply& r) {
    std::printf("  lobby occupants (%s):", proto::to_string(r.status));
    for (const auto& u : r.users) std::printf(" %s", u.c_str());
    std::printf("\n");
  });
  sim.run_for(Duration::seconds(2));

  // And the temporal query: where was Bob before his walk?
  std::printf("\nalice asks where Bob was at t=%.0f s:\n",
              before_move.to_seconds());
  sim.client("alice")->where_was(
      "Bob", before_move, [&](const proto::HistoryReply& r) {
        if (r.was_present) {
          std::printf("  Bob was in %s (since %.2f s)\n", r.room.c_str(),
                      Duration::nanos(r.since_ns).to_seconds());
        } else {
          std::printf("  Bob was not attributed to any room (%s)\n",
                      proto::to_string(r.status));
        }
      });
  sim.run_for(Duration::seconds(6));

  // Privacy: Carol opts out of being located; she vanishes from queries.
  std::printf("\ncarol opts out of location queries; alice asks again:\n");
  sim.server().registry().set_locatable_by_anyone("carol", false);
  sim.client("alice")->who_is_in("lobby", [](const proto::WhoIsInReply& r) {
    std::printf("  lobby occupants (%s):", proto::to_string(r.status));
    for (const auto& u : r.users) std::printf(" %s", u.c_str());
    std::printf("\n");
  });
  sim.run_for(Duration::seconds(2));

  // The audit trail, through the server's unified query API: every
  // transition of Bob's handheld since just before his coffee run, as one
  // history-since query (the same data the CSV dump below carries, but
  // filtered, permission-checked and chronological).
  using Query = core::BipsServer::Query;
  const auto hist =
      sim.server().query(Query::history_since("alice", "Bob", before_move));
  std::printf("\nBob's movements since t=%.0f s (BipsServer::query):\n",
              before_move.to_seconds());
  if (!hist.ok()) {
    std::printf("  %s\n", proto::to_string(hist.status));
  } else if (hist.visits.empty()) {
    std::printf("  (no transitions recorded)\n");
  }
  for (const auto& v : hist.visits) {
    std::printf("  [%7.2f s] Bob %s %s\n", v.at.to_seconds(),
                v.entered ? "entered" : "left", v.room.c_str());
  }

  // The raw audit trail.
  std::ostringstream csv;
  sim.write_history_csv(csv);
  std::printf("\nlocation-database transition log (CSV):\n%s",
              csv.str().c_str());
  return 0;
}
