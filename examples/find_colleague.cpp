// Scenario demo: "visualize on your handheld the shortest path to reach
// another mobile user inside the same building" -- the BIPS headline
// feature, driven entirely through the handheld-side client API (queries
// travel handheld -> workstation -> server and back over the simulated
// piconet + LAN).
//
//   $ ./find_colleague
#include <cstdio>

#include "src/core/simulation.hpp"

using namespace bips;

namespace {

void render_handheld(const proto::PathReply& r) {
  std::printf("  +--------------------------------------+\n");
  std::printf("  |  BIPS  - find colleague              |\n");
  if (r.status != proto::QueryStatus::kOk) {
    std::printf("  |  %-36s|\n", proto::to_string(r.status));
  } else {
    std::printf("  |  %.0f m to go:%-24s|\n", r.distance, "");
    for (std::size_t i = 0; i < r.rooms.size(); ++i) {
      std::printf("  |   %s %-33s|\n", i + 1 == r.rooms.size() ? "*" : "v",
                  r.rooms[i].c_str());
    }
  }
  std::printf("  +--------------------------------------+\n");
}

}  // namespace

int main() {
  core::SimulationConfig cfg;
  cfg.seed = 7;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.mobility.pause_min = Duration::seconds(10'000);  // scripted movement
  cfg.mobility.pause_max = Duration::seconds(20'000);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  sim.add_user("Alice", "alice", "pw-a", *sim.building().find("lobby"));
  sim.add_user("Bob", "bob", "pw-b", *sim.building().find("seminar-room"));

  // Bob's handheld position is scripted so the story is deterministic.
  Vec2 bob_pos = sim.building().room(*sim.building().find("seminar-room")).center;
  sim.client("bob")->device().set_position_provider([&] { return bob_pos; });

  std::printf("enrolling both handhelds...\n");
  sim.run_for(Duration::seconds(60));
  std::printf("  alice: connected=%d logged_in=%d\n",
              sim.client("alice")->connected(),
              sim.client("alice")->logged_in());
  std::printf("  bob:   connected=%d logged_in=%d\n\n",
              sim.client("bob")->connected(), sim.client("bob")->logged_in());

  // Alice asks her handheld for the way to Bob.
  std::printf("alice (in the lobby) searches for Bob:\n");
  bool done = false;
  sim.client("alice")->find_path_to("Bob", [&](const proto::PathReply& r) {
    render_handheld(r);
    done = true;
  });
  sim.run_for(Duration::seconds(2));
  if (!done) std::printf("  (no reply -- not connected?)\n");

  // Bob wanders off to the networks lab; BIPS notices the move on its own.
  std::printf("\nBob walks to lab-networks; waiting for BIPS to re-track "
              "him...\n\n");
  bob_pos = sim.building().room(*sim.building().find("lab-networks")).center;
  sim.run_for(Duration::seconds(45));

  std::printf("alice asks again:\n");
  done = false;
  sim.client("alice")->find_path_to("Bob", [&](const proto::PathReply& r) {
    render_handheld(r);
    done = true;
  });
  sim.run_for(Duration::seconds(2));
  if (!done) std::printf("  (no reply -- not connected?)\n");

  // And the failure modes a real user would see:
  std::printf("\nalice searches for someone who never logged in:\n");
  sim.server().registry().register_user("carol", "Carol", "pw-c", 3);
  sim.client("alice")->find_path_to("Carol", [&](const proto::PathReply& r) {
    render_handheld(r);
  });
  sim.run_for(Duration::seconds(2));

  std::printf("\nalice searches for an unknown name:\n");
  sim.client("alice")->find_path_to("Mallory", [&](const proto::PathReply& r) {
    render_handheld(r);
  });
  sim.run_for(Duration::seconds(2));

  // The same answers through the server's unified query API -- the operator
  // console view, no handheld round trip. One Query type covers every
  // lookup the handheld flows above exercised piecemeal.
  using Query = core::BipsServer::Query;
  std::printf("\noperator console, via BipsServer::query():\n");
  const auto where = sim.server().query(Query::where_is("", "Bob"));
  std::printf("  where-is Bob: %s%s\n", proto::to_string(where.status),
              where.ok() ? (" -> " + where.room).c_str() : "");
  const auto path = sim.server().query(Query::path_to(
      "alice", "Bob",
      static_cast<core::StationId>(*sim.building().find("lobby"))));
  if (path.ok()) {
    std::printf("  path-to Bob from the lobby: %.0f m via", path.distance);
    for (const auto& room : path.rooms) std::printf(" %s", room.c_str());
    std::printf("\n");
  } else {
    std::printf("  path-to Bob: %s\n", proto::to_string(path.status));
  }
  return 0;
}
