// Building-scale tracking demo: the full BIPS deployment of the paper's
// Figure 1 on the 10-room academic-department floor plan, with six users
// walking between rooms for ten simulated minutes.
//
// Streams the presence transitions the central location database records
// through the server's subscription hub -- one in-process room
// subscription per piconet, so every delta is pushed to us the instant
// the server applies it. The hub's cost model makes this the cheap way
// to watch a building: the server does one fan-out per presence *delta*
// (people move a few times a minute), where the old pattern -- re-polling
// the history after every run_for slice -- paid per poll regardless of
// whether anything moved. Ends with a tracking scorecard against mobility
// ground truth.
//
//   $ ./building_tracking
#include <cstdio>

#include "src/core/simulation.hpp"
#include "src/mobility/render.hpp"

using namespace bips;

int main() {
  core::SimulationConfig cfg;
  cfg.seed = 42;
  // The paper's operational cycle: 3.84 s of discovery per 15.4 s.
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(3.84);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(15.4);
  cfg.mobility.pause_min = Duration::seconds(20);
  cfg.mobility.pause_max = Duration::seconds(120);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  const struct {
    const char* name;
    const char* userid;
    const char* room;
  } users[] = {
      {"Alice", "alice", "office-a"},   {"Bob", "bob", "lab-networks"},
      {"Carol", "carol", "library"},    {"Dave", "dave", "lobby"},
      {"Erin", "erin", "seminar-room"}, {"Frank", "frank", "coffee-corner"},
  };
  for (const auto& u : users) {
    sim.add_user(u.name, u.userid, std::string(u.userid) + "-pw",
                 *sim.building().find(u.room));
  }
  sim.enable_tracking_metrics(Duration::seconds(1));

  // One in-process room subscription per piconet: the server pushes every
  // presence delta to us as it lands. Registration cost is paid once;
  // after that the hub does a single fan-out per delta -- nothing scales
  // with how often (or whether) we would have polled.
  for (core::StationId s = 0;
       s < static_cast<core::StationId>(sim.workstation_count()); ++s) {
    sim.server().subscriptions().subscribe_room(
        s, [](const core::SubscriptionHub::Event& ev) {
          std::printf("[%7.2f s] %-6s %s %s\n", ev.at.to_seconds(),
                      ev.user.c_str(), ev.entered ? "entered" : "left   ",
                      ev.room.c_str());
        });
  }

  std::printf("running 600 simulated seconds across %zu piconets...\n\n",
              sim.workstation_count());
  sim.run_for(Duration::seconds(600));

  // A snapshot of the floor: workstations '#', users a..f.
  std::vector<mobility::Marker> markers;
  char glyph = 'a';
  for (const auto& u : users) {
    markers.push_back({glyph++, sim.agent(u.userid)->position()});
  }
  mobility::RenderOptions ropts;
  ropts.meters_per_cell = 1.5;
  std::printf("\n--- floor map at t=600 s (users a..f) ---\n%s",
              mobility::render_map(sim.building(), markers, ropts).c_str());

  std::printf("\n--- where is everyone (location database) ---\n");
  for (const auto& u : users) {
    const auto reply =
        sim.server().query(core::BipsServer::Query::where_is("", u.name));
    const auto truth = sim.true_room(u.userid);
    std::printf("  %-6s db=%-14s truth=%s\n", u.name,
                reply.status == proto::QueryStatus::kOk ? reply.room.c_str()
                                                        : to_string(reply.status),
                truth != mobility::kNoRoom
                    ? sim.building().room(truth).name.c_str()
                    : "(between rooms)");
  }

  const core::TrackingMetrics& m = sim.tracking();
  std::printf("\n--- tracking scorecard (1 Hz samples, logged-in users) ---\n");
  std::printf("  samples        %8llu\n",
              static_cast<unsigned long long>(m.samples));
  std::printf("  correct room   %8llu\n",
              static_cast<unsigned long long>(m.correct_room));
  std::printf("  agree absent   %8llu\n",
              static_cast<unsigned long long>(m.agree_absent));
  std::printf("  wrong room     %8llu\n",
              static_cast<unsigned long long>(m.wrong_room));
  std::printf("  false absent   %8llu\n",
              static_cast<unsigned long long>(m.false_absent));
  std::printf("  false present  %8llu\n",
              static_cast<unsigned long long>(m.false_present));
  std::printf("  accuracy       %7.1f%%\n", 100.0 * m.accuracy());

  std::printf("\n--- LAN cost of the delta-update policy ---\n");
  std::printf("  presence updates applied: %llu, redundant: %llu\n",
              static_cast<unsigned long long>(
                  sim.server().locations().stats().presence_updates),
              static_cast<unsigned long long>(
                  sim.server().locations().stats().redundant_updates));
  return 0;
}
