// Quickstart: the smallest complete BIPS deployment.
//
// Two rooms, two registered users, one central server. We let the system
// run for a simulated minute -- long enough for the workstations to
// discover, page, enroll and log in both handhelds -- then ask the location
// service where everyone is.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/simulation.hpp"

using namespace bips;

int main() {
  // 1. Describe the building: one workstation (piconet master) per room.
  mobility::Building building;
  const auto office = building.add_room("office", {0, 0});
  const auto lab = building.add_room("lab", {14, 0});
  building.connect(office, lab);

  // 2. Configure the deployment. Defaults follow the paper: 10 m piconets,
  //    3.84 s inquiry slot inside a 15.4 s operational cycle.
  core::SimulationConfig cfg;
  cfg.seed = 2003;  // ICDCS 2003 -- any seed reproduces bit-identically
  cfg.mobility.pause_min = Duration::seconds(1'000);  // stay put for the demo
  cfg.mobility.pause_max = Duration::seconds(2'000);

  core::BipsSimulation sim(std::move(building), cfg);

  // 3. Register users (the paper's off-line registration procedure) and
  //    hand them their Bluetooth handhelds.
  sim.add_user("Alice", "alice", "alice-pw", office);
  sim.add_user("Bob", "bob", "bob-pw", lab);

  // 4. Run: discovery -> paging -> enrollment -> login, all simulated.
  sim.run_for(Duration::seconds(60));

  std::printf("after 60 simulated seconds:\n");
  for (const char* user : {"alice", "bob"}) {
    const auto* client = sim.client(user);
    const auto room = sim.db_room(user);
    std::printf("  %-5s connected=%d logged_in=%d room=%s\n", user,
                client->connected() ? 1 : 0, client->logged_in() ? 1 : 0,
                room ? sim.building().room(*room).name.c_str() : "(unknown)");
  }

  // 5. The paper's spatio-temporal query, served by the central server's
  //    unified Query API (one entry point for every lookup kind).
  using Query = core::BipsServer::Query;
  const auto reply = sim.server().query(Query::where_is("alice", "Bob"));
  std::printf("\nalice asks: where is Bob?  ->  status=%s room=%s\n",
              proto::to_string(reply.status), reply.room.c_str());

  // 6. And the headline feature: the shortest path to reach him.
  const auto path = sim.server().query(Query::path_to("alice", "Bob", office));
  std::printf("shortest path: ");
  for (std::size_t i = 0; i < path.rooms.size(); ++i) {
    std::printf("%s%s", i ? " -> " : "", path.rooms[i].c_str());
  }
  std::printf("  (%.0f m)\n", path.distance);
  return 0;
}
