// Operations drill: what happens when the server dies? And a workstation?
//
// Runs the department deployment and power-cuts the central server
// mid-meeting: sessions, presence and history all die with it. On restart
// it comes back with a fresh epoch and broadcasts a SyncRequest; the
// workstations answer with full SyncSnapshots (tracked devices plus their
// witnessed userid<->device bindings), so the location database reconverges
// in seconds and no handheld ever has to re-login. Then the drill kills the
// seminar-room workstation and narrates that recovery too: link losses at
// the handhelds, the server's failure detector expiring the dead station's
// records, and full re-enrollment after the restart.
//
//   $ ./fault_drill
#include <cstdio>

#include "src/core/simulation.hpp"

using namespace bips;

namespace {

void report(core::BipsSimulation& sim, const char* label) {
  int logged = 0, connected = 0, located = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string id = "u" + std::to_string(i);
    if (sim.client(id)->logged_in()) ++logged;
    if (sim.client(id)->connected()) ++connected;
    if (sim.db_room(id)) ++located;
  }
  std::printf("%-28s logged_in=%d/4 connected=%d/4 located=%d/4 "
              "stations_expired=%llu\n",
              label, logged, connected, located,
              static_cast<unsigned long long>(
                  sim.simulator().obs().metrics.counter_value(
                      "server.stations_expired")));
}

}  // namespace

int main() {
  core::SimulationConfig cfg;
  cfg.seed = 21;
  cfg.stagger_inquiry = true;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.server.station_timeout = Duration::seconds(10);
  cfg.mobility.pause_min = Duration::seconds(10'000);
  cfg.mobility.pause_max = Duration::seconds(20'000);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  const auto seminar = *sim.building().find("seminar-room");
  // Four attendees sit in the seminar room.
  for (int i = 0; i < 4; ++i) {
    sim.add_user("Attendee " + std::to_string(i), "u" + std::to_string(i),
                 "pw", seminar);
  }

  std::printf("BIPS fault drill: first the server fails, then a station.\n\n");
  sim.run_for(Duration::seconds(60));
  report(sim, "t=60 s (healthy):");

  // Act one: the server dies. Everything in memory -- sessions, presence,
  // history -- is lost; only the user registry survives.
  std::printf("\n*** power cut at the central server (epoch %u dies) ***\n\n",
              sim.server().epoch());
  sim.server().crash();
  sim.run_for(Duration::seconds(30));
  report(sim, "t=90 s (server dark):");

  std::printf("\n*** server restarted: epoch++, SyncRequest broadcast ***\n\n");
  sim.server().restart();
  sim.run_for(Duration::seconds(10));
  report(sim, "t=100 s (resynced):");
  std::printf(
      "\nepoch=%u  snapshots_received=%llu  presences_restored=%llu  "
      "sessions_restored=%llu\n",
      sim.server().epoch(),
      static_cast<unsigned long long>(
          sim.simulator().obs().metrics.counter_value("server.syncs_received")),
      static_cast<unsigned long long>(sim.simulator().obs().metrics.counter_value(
          "server.presences_restored")),
      static_cast<unsigned long long>(sim.simulator().obs().metrics.counter_value(
          "server.sessions_restored")));
  std::printf(
      "\nnote: the server forgot the sessions, but the workstations'\n"
      "snapshots carried their witnessed userid<->device bindings, so the\n"
      "service healed without a single re-login.\n");

  // Act two: a workstation dies instead.
  std::printf("\n*** power cut at the seminar room ***\n\n");
  sim.workstation(seminar).crash();
  sim.run_for(Duration::seconds(5));
  report(sim, "t=105 s (links dropping):");
  sim.run_for(Duration::seconds(15));
  report(sim, "t=120 s (records expired):");

  std::printf("\n*** workstation restarted ***\n\n");
  sim.workstation(seminar).restart();
  sim.run_for(Duration::seconds(60));
  report(sim, "t=180 s (recovered):");

  std::printf("\nnote: this time the sessions survived untouched (they live\n"
              "at the server); only presence needed healing.\n");
  return 0;
}
