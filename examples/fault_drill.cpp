// Operations drill: what happens when a workstation dies?
//
// Runs the department deployment, kills the seminar-room workstation
// mid-meeting, and narrates the recovery: link losses at the handhelds,
// the server's failure detector expiring the dead station's records,
// neighbours covering the overlap, and full re-enrollment after the
// restart.
//
//   $ ./fault_drill
#include <cstdio>

#include "src/core/simulation.hpp"

using namespace bips;

namespace {

void report(core::BipsSimulation& sim, const char* label) {
  int logged = 0, connected = 0, located = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string id = "u" + std::to_string(i);
    if (sim.client(id)->logged_in()) ++logged;
    if (sim.client(id)->connected()) ++connected;
    if (sim.db_room(id)) ++located;
  }
  std::printf("%-28s logged_in=%d/4 connected=%d/4 located=%d/4 "
              "stations_expired=%llu\n",
              label, logged, connected, located,
              static_cast<unsigned long long>(
                  sim.server().stats().stations_expired));
}

}  // namespace

int main() {
  core::SimulationConfig cfg;
  cfg.seed = 21;
  cfg.stagger_inquiry = true;
  cfg.workstation.scheduler.inquiry_length = Duration::from_seconds(2.56);
  cfg.workstation.scheduler.cycle_length = Duration::from_seconds(5.12);
  cfg.server.station_timeout = Duration::seconds(10);
  cfg.mobility.pause_min = Duration::seconds(10'000);
  cfg.mobility.pause_max = Duration::seconds(20'000);

  core::BipsSimulation sim(mobility::Building::department(), cfg);
  const auto seminar = *sim.building().find("seminar-room");
  // Four attendees sit in the seminar room.
  for (int i = 0; i < 4; ++i) {
    sim.add_user("Attendee " + std::to_string(i), "u" + std::to_string(i),
                 "pw", seminar);
  }

  std::printf("BIPS fault drill: the seminar-room workstation will fail.\n\n");
  sim.run_for(Duration::seconds(60));
  report(sim, "t=60 s (healthy):");

  std::printf("\n*** power cut at the seminar room ***\n\n");
  sim.workstation(seminar).crash();
  sim.run_for(Duration::seconds(5));
  report(sim, "t=65 s (links dropping):");
  sim.run_for(Duration::seconds(15));
  report(sim, "t=80 s (records expired):");

  std::printf("\n*** workstation restarted ***\n\n");
  sim.workstation(seminar).restart();
  sim.run_for(Duration::seconds(60));
  report(sim, "t=140 s (recovered):");

  std::printf("\nnote: sessions survive the outage (login binds userid to\n"
              "the device at the *server*); only presence needed healing.\n");
  return 0;
}
