// CLI: run a BIPS deployment described by a text scenario file.
//
//   $ ./scenario_runner examples/scenarios/department.bips [history.csv]
//   $ ./scenario_runner --demo
//   $ ./scenario_runner --trace trace.jsonl examples/scenarios/department.bips
//
// Prints a deployment report (enrollment, tracking scorecard, and the full
// metrics-registry snapshot) and optionally dumps the location-database
// transition history as CSV. --trace FILE streams the structured simulation
// trace (JSONL, one record per line) for offline analysis.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "src/core/scenario.hpp"
#include "src/obs/obs.hpp"

using namespace bips;

namespace {

constexpr const char* kDemoScenario = R"(# three-room demo deployment
seed 7
radius 10
stagger on
inquiry 3.84
cycle 15.4
pause 15 60
room lobby 0 0
room lab 14 0
room office 28 0
edge lobby lab
edge lab office
user Alice alice pw-a lobby
user Bob bob pw-b lab
user Carol carol pw-c office
run 300
sample 1
)";

void report(core::BipsSimulation& sim, const core::ScenarioSpec& spec) {
  std::printf("ran %.0f simulated seconds: %zu rooms, %zu users\n\n",
              spec.run_time.to_seconds(), sim.workstation_count(),
              sim.user_count());

  std::printf("--- users ---\n");
  for (const auto& u : spec.users) {
    const auto* client = sim.client(u.userid);
    const auto room = sim.db_room(u.userid);
    std::printf("  %-10s logged_in=%d room=%s\n", u.name.c_str(),
                client->logged_in() ? 1 : 0,
                room ? sim.building().room(*room).name.c_str() : "(unknown)");
  }

  const core::TrackingMetrics& m = sim.tracking();
  std::printf("\n--- tracking scorecard ---\n");
  std::printf("  samples %llu, accuracy %.1f%% (correct %llu, absent-agree "
              "%llu, wrong %llu, false-absent %llu, false-present %llu)\n",
              static_cast<unsigned long long>(m.samples),
              100.0 * m.accuracy(),
              static_cast<unsigned long long>(m.correct_room),
              static_cast<unsigned long long>(m.agree_absent),
              static_cast<unsigned long long>(m.wrong_room),
              static_cast<unsigned long long>(m.false_absent),
              static_cast<unsigned long long>(m.false_present));

  // Everything the deployment counted, straight from the registry: server,
  // location database, LAN, radio, workstations and kernel in one table.
  std::printf("\n--- metrics registry ---\n%s",
              sim.simulator().obs().metrics.to_table().c_str());
}

/// Opens `path` for writing, creating missing parent directories first.
/// Any failure (uncreatable directory, unwritable file) is reported on
/// stderr and returns false -- the runner exits with an error status
/// instead of aborting or writing a partial sink.
bool open_sink(std::ofstream& os, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "cannot create directory %s: %s\n",
                   p.parent_path().string().c_str(), ec.message().c_str());
      return false;
    }
  }
  os.open(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool exact_slots = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--exact-slots") == 0) {
      exact_slots = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--trace trace.jsonl] [--exact-slots] "
                 "<scenario-file> [history.csv]\n"
                 "       %s [--trace trace.jsonl] [--exact-slots] --demo\n",
                 argv[0], argv[0]);
    return 1;
  }

  core::ScenarioError err;
  std::optional<core::ScenarioSpec> spec;
  if (std::strcmp(positional[0], "--demo") == 0) {
    std::printf("running the built-in demo scenario:\n%s\n", kDemoScenario);
    spec = core::parse_scenario(std::string(kDemoScenario), &err);
  } else {
    std::ifstream in(positional[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", positional[0]);
      return 1;
    }
    spec = core::parse_scenario(in, &err);
  }
  if (!spec) {
    std::fprintf(stderr, "scenario error (line %d): %s\n", err.line,
                 err.message.c_str());
    return 1;
  }

  // The trace sink must be live before the first event fires, so it rides
  // the pre-run hook. Deterministic: same scenario + seed => same bytes.
  std::ofstream trace_os;
  std::unique_ptr<obs::JsonlSink> trace_sink;
  if (!trace_path.empty()) {
    if (!open_sink(trace_os, trace_path)) return 1;
    trace_sink = std::make_unique<obs::JsonlSink>(trace_os);
  }
  if (exact_slots) spec->config.channel.exact_slots = true;
  auto sim = core::run_scenario(*spec, [&](core::BipsSimulation& s) {
    if (trace_sink) s.simulator().obs().tracer.set_sink(trace_sink.get());
  });
  report(*sim, *spec);
  if (trace_sink) {
    sim->simulator().obs().tracer.set_sink(nullptr);
    trace_sink->flush();
    std::printf("\ntrace written to %s (%zu records)\n", trace_path.c_str(),
                trace_sink->records_written());
  }

  if (positional.size() >= 2 && std::strcmp(positional[0], "--demo") != 0) {
    std::ofstream csv;
    if (!open_sink(csv, positional[1])) return 1;
    sim->write_history_csv(csv);
    std::printf("\nhistory written to %s\n", positional[1]);
  }
  return 0;
}
