// CLI: run (and grade) a BIPS deployment described by a text scenario file.
//
//   $ ./scenario_runner examples/scenarios/department.bips [history.csv]
//   $ ./scenario_runner --demo
//   $ ./scenario_runner --trace trace.jsonl examples/scenarios/department.bips
//   $ ./scenario_runner --synth 42 > generated.bips
//
// Prints a deployment report (enrollment, tracking scorecard, assertion
// outcomes, and the full metrics-registry snapshot) and optionally dumps the
// location-database transition history as CSV. --trace FILE streams the
// structured simulation trace (JSONL, one record per line) for offline
// analysis. --synth SEED emits a generated self-checking scenario to stdout
// instead of running anything.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "src/obs/obs.hpp"
#include "src/scenario/scenario.hpp"
#include "src/scenario/synth.hpp"

using namespace bips;

namespace {

// Distinct exit codes so CI and shell scripts can tell failure classes
// apart (documented in --help).
enum ExitCode {
  kOk = 0,
  kUsage = 2,       // bad command line
  kParseError = 3,  // scenario rejected (syntax / validation)
  kSinkError = 4,   // an output file could not be created or written
  kAssertFailed = 5,   // some in-scenario assertion failed
  kInvariantBroken = 6,  // assert-final no-invariant-violations failed
};

constexpr const char* kDemoScenario = R"(# three-room demo deployment
seed 7
radius 10
stagger on
inquiry 3.84
cycle 15.4
pause 15 60
room lobby 0 0
room lab 14 0
room office 28 0
edge lobby lab
edge lab office
user Alice alice pw-a lobby
user Bob bob pw-b lab
user Carol carol pw-c office
run 300
sample 1
)";

void usage(std::FILE* to, const char* argv0) {
  std::fprintf(to,
               "usage: %s [options] <scenario-file> [history.csv]\n"
               "       %s [options] --demo\n"
               "       %s --synth SEED [--chaos]\n"
               "\n"
               "options:\n"
               "  --trace FILE    stream the structured trace as JSONL\n"
               "  --exact-slots   disable virtual-slot fast-forward\n"
               "  --threads N     replay on the sharded parallel harness\n"
               "                  with N workers (identical output for every\n"
               "                  N; the full scenario language replays,\n"
               "                  faults and all assertion kinds included)\n"
               "  --shards N      with --threads: zone count (default 4)\n"
               "  --demo          run a built-in three-room scenario\n"
               "  --synth SEED    print a generated self-checking scenario\n"
               "                  to stdout and exit (no simulation)\n"
               "  --chaos         with --synth: use a seeded chaos block\n"
               "                  instead of scripted station faults\n"
               "  --help          this text\n"
               "\n"
               "exit codes:\n"
               "  0  run completed; every assertion passed\n"
               "  2  bad command line\n"
               "  3  scenario rejected (syntax or validation error)\n"
               "  4  an output file could not be created or written\n"
               "  5  an in-scenario assertion failed\n"
               "  6  the invariant checker recorded violations\n",
               argv0, argv0, argv0);
}

void report(core::BipsSimulation& sim, const core::ScenarioSpec& spec) {
  std::printf("ran %.0f simulated seconds: %zu rooms, %zu users\n\n",
              spec.run_time.to_seconds(), sim.workstation_count(),
              sim.user_count());

  std::printf("--- users ---\n");
  for (const auto& u : spec.users) {
    const auto* client = sim.client(u.userid);
    const auto room = sim.db_room(u.userid);
    std::printf("  %-10s logged_in=%d room=%s\n", u.name.c_str(),
                client->logged_in() ? 1 : 0,
                room ? sim.building().room(*room).name.c_str() : "(unknown)");
  }

  const core::TrackingMetrics& m = sim.tracking();
  std::printf("\n--- tracking scorecard ---\n");
  std::printf("  samples %llu, accuracy %.1f%% (correct %llu, absent-agree "
              "%llu, wrong %llu, false-absent %llu, false-present %llu)\n",
              static_cast<unsigned long long>(m.samples),
              100.0 * m.accuracy(),
              static_cast<unsigned long long>(m.correct_room),
              static_cast<unsigned long long>(m.agree_absent),
              static_cast<unsigned long long>(m.wrong_room),
              static_cast<unsigned long long>(m.false_absent),
              static_cast<unsigned long long>(m.false_present));

  // Everything the deployment counted, straight from the registry: server,
  // location database, LAN, radio, workstations and kernel in one table.
  std::printf("\n--- metrics registry ---\n%s",
              sim.simulator().obs().metrics.to_table().c_str());
}

void report_sharded(core::ShardedBipsSimulation& sim,
                    const core::ScenarioSpec& spec, unsigned threads) {
  std::printf("ran %.0f simulated seconds: %zu rooms, %zu users "
              "(%zu shards, %u threads, %.1f ms window)\n\n",
              spec.run_time.to_seconds(), sim.workstation_count(),
              sim.user_count(), sim.shard_count(), threads,
              sim.window() == sim::kUnboundedLookahead
                  ? 0.0
                  : sim.window().to_millis());

  std::printf("--- users ---\n");
  for (const auto& u : spec.users) {
    const auto room = sim.db_room(u.userid);
    std::printf("  %-10s logged_in=%d room=%s owner-shard=%zu\n",
                u.name.c_str(),
                sim.active_client(u.userid).logged_in() ? 1 : 0,
                room ? sim.building().room(*room).name.c_str() : "(unknown)",
                sim.owner_shard(u.userid));
  }

  const core::TrackingMetrics& m = sim.tracking();
  std::printf("\n--- tracking scorecard ---\n");
  std::printf("  samples %llu, accuracy %.1f%% (correct %llu, absent-agree "
              "%llu, wrong %llu, false-absent %llu, false-present %llu)\n",
              static_cast<unsigned long long>(m.samples),
              100.0 * m.accuracy(),
              static_cast<unsigned long long>(m.correct_room),
              static_cast<unsigned long long>(m.agree_absent),
              static_cast<unsigned long long>(m.wrong_room),
              static_cast<unsigned long long>(m.false_absent),
              static_cast<unsigned long long>(m.false_present));

  // Cross-shard sums of the session-recovery cells, so a sharded replay of
  // an amnesia scenario shows *how* sessions came back (epoch-triggered
  // re-login) without dumping every shard's registry.
  std::printf("\n--- session recovery ---\n");
  std::printf("  client.relogin %llu, svc.relogin %llu\n",
              static_cast<unsigned long long>(sim.metric_sum("client.relogin")),
              static_cast<unsigned long long>(sim.metric_sum("svc.relogin")));

  std::printf("\n--- sharded kernel ---\n");
  std::printf("  events %llu, windows %llu, cross-shard mail %llu\n",
              static_cast<unsigned long long>(sim.group().events_executed()),
              static_cast<unsigned long long>(sim.group().windows_run()),
              static_cast<unsigned long long>(sim.group().mail_delivered()));
}

void report_checks(const core::ScenarioReport& rep) {
  if (rep.checks.empty()) return;
  std::printf("\n--- assertions ---\n");
  for (const core::ScenarioCheck& c : rep.checks) {
    std::printf("  line %-3d %s  %s%s%s\n", c.line,
                c.passed ? "PASS" : "FAIL", c.what.c_str(),
                c.detail.empty() ? "" : ": ", c.detail.c_str());
  }
  std::printf("  %zu/%zu passed\n", rep.checks.size() - rep.failed(),
              rep.checks.size());
}

/// Opens `path` for writing, creating missing parent directories first.
/// Any failure (uncreatable directory, unwritable file) is reported on
/// stderr and returns false -- the runner exits with kSinkError instead of
/// aborting or writing a partial sink.
bool open_sink(std::ofstream& os, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "cannot create directory %s: %s\n",
                   p.parent_path().string().c_str(), ec.message().c_str());
      return false;
    }
  }
  os.open(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Flushes and verifies the stream after the payload was written: a full
/// disk or revoked permission surfaces here, not as a silent exit 0.
bool close_sink(std::ofstream& os, const std::string& path) {
  os.flush();
  if (!os.good()) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool exact_slots = false;
  bool synth_chaos = false;
  long long synth_seed = -1;
  long threads = 0;  // 0 = monolithic; >0 = sharded harness with N workers
  long shards = 4;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      usage(stdout, argv[0]);
      return kOk;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--exact-slots") == 0) {
      exact_slots = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtol(argv[++i], nullptr, 10);
      if (threads < 1) {
        std::fprintf(stderr, "--threads: N must be a positive integer\n");
        return kUsage;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtol(argv[++i], nullptr, 10);
      if (shards < 1) {
        std::fprintf(stderr, "--shards: N must be a positive integer\n");
        return kUsage;
      }
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      synth_chaos = true;
    } else if (std::strcmp(argv[i], "--synth") == 0 && i + 1 < argc) {
      char* end = nullptr;
      synth_seed = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || synth_seed < 0) {
        std::fprintf(stderr, "--synth: SEED must be a non-negative integer\n");
        return kUsage;
      }
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (synth_seed >= 0) {
    core::SynthParams params;
    params.chaos_block = synth_chaos;
    std::fputs(core::synth_scenario(
                   static_cast<std::uint64_t>(synth_seed), params)
                   .c_str(),
               stdout);
    return kOk;
  }
  if (positional.empty()) {
    usage(stderr, argv[0]);
    return kUsage;
  }

  core::ScenarioError err;
  std::optional<core::ScenarioSpec> spec;
  if (std::strcmp(positional[0], "--demo") == 0) {
    std::printf("running the built-in demo scenario:\n%s\n", kDemoScenario);
    spec = core::parse_scenario(std::string(kDemoScenario), &err);
  } else {
    std::ifstream in(positional[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", positional[0]);
      return kParseError;
    }
    spec = core::parse_scenario(in, &err);
  }
  if (!spec) {
    std::fprintf(stderr, "scenario error (line %d): %s\n", err.line,
                 err.message.c_str());
    return kParseError;
  }

  if (exact_slots) spec->config.channel.exact_slots = true;

  if (threads > 0) {
    // Sharded parallel replay: identical output for every worker count
    // (CI byte-diffs --threads 4 histories against --threads 1).
    if (!trace_path.empty()) {
      std::fprintf(stderr, "--trace is not supported with --threads yet "
                           "(per-shard trace streams)\n");
      return kUsage;
    }
    std::string err_sharded;
    core::ScenarioReport checks;
    auto sim = core::run_scenario_sharded(
        *spec, static_cast<unsigned>(threads),
        static_cast<std::size_t>(shards), &checks, &err_sharded);
    if (!sim) {
      std::fprintf(stderr, "%s\n", err_sharded.c_str());
      return kParseError;
    }
    report_sharded(*sim, *spec, static_cast<unsigned>(threads));
    report_checks(checks);
    if (positional.size() >= 2 && std::strcmp(positional[0], "--demo") != 0) {
      std::ofstream csv;
      if (!open_sink(csv, positional[1])) return kSinkError;
      sim->write_history_csv(csv);
      if (!close_sink(csv, positional[1])) return kSinkError;
      std::printf("\nhistory written to %s\n", positional[1]);
    }
    if (checks.passed()) return kOk;
    return checks.invariants_violated() ? kInvariantBroken : kAssertFailed;
  }

  // The trace sink must be live before the first event fires, so it rides
  // the pre-run hook. Deterministic: same scenario + seed => same bytes.
  std::ofstream trace_os;
  std::unique_ptr<obs::JsonlSink> trace_sink;
  if (!trace_path.empty()) {
    if (!open_sink(trace_os, trace_path)) return kSinkError;
    trace_sink = std::make_unique<obs::JsonlSink>(trace_os);
  }
  core::ScenarioReport checks;
  auto sim = core::run_scenario(
      *spec,
      [&](core::BipsSimulation& s) {
        if (trace_sink) s.simulator().obs().tracer.set_sink(trace_sink.get());
      },
      &checks);
  report(*sim, *spec);
  report_checks(checks);
  if (trace_sink) {
    sim->simulator().obs().tracer.set_sink(nullptr);
    trace_sink->flush();
    if (!close_sink(trace_os, trace_path)) return kSinkError;
    std::printf("\ntrace written to %s (%zu records)\n", trace_path.c_str(),
                trace_sink->records_written());
  }

  if (positional.size() >= 2 && std::strcmp(positional[0], "--demo") != 0) {
    std::ofstream csv;
    if (!open_sink(csv, positional[1])) return kSinkError;
    sim->write_history_csv(csv);
    if (!close_sink(csv, positional[1])) return kSinkError;
    std::printf("\nhistory written to %s\n", positional[1]);
  }
  if (checks.invariants_violated()) return kInvariantBroken;
  if (!checks.passed()) return kAssertFailed;
  return kOk;
}
