// CLI: run a BIPS deployment described by a text scenario file.
//
//   $ ./scenario_runner examples/scenarios/department.bips [history.csv]
//   $ ./scenario_runner --demo
//
// Prints a deployment report (enrollment, tracking scorecard, LAN traffic)
// and optionally dumps the location-database transition history as CSV.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/core/scenario.hpp"

using namespace bips;

namespace {

constexpr const char* kDemoScenario = R"(# three-room demo deployment
seed 7
radius 10
stagger on
inquiry 3.84
cycle 15.4
pause 15 60
room lobby 0 0
room lab 14 0
room office 28 0
edge lobby lab
edge lab office
user Alice alice pw-a lobby
user Bob bob pw-b lab
user Carol carol pw-c office
run 300
sample 1
)";

void report(core::BipsSimulation& sim, const core::ScenarioSpec& spec) {
  std::printf("ran %.0f simulated seconds: %zu rooms, %zu users\n\n",
              spec.run_time.to_seconds(), sim.workstation_count(),
              sim.user_count());

  std::printf("--- users ---\n");
  for (const auto& u : spec.users) {
    const auto* client = sim.client(u.userid);
    const auto room = sim.db_room(u.userid);
    std::printf("  %-10s logged_in=%d room=%s\n", u.name.c_str(),
                client->logged_in() ? 1 : 0,
                room ? sim.building().room(*room).name.c_str() : "(unknown)");
  }

  const core::TrackingMetrics& m = sim.tracking();
  std::printf("\n--- tracking scorecard ---\n");
  std::printf("  samples %llu, accuracy %.1f%% (correct %llu, absent-agree "
              "%llu, wrong %llu, false-absent %llu, false-present %llu)\n",
              static_cast<unsigned long long>(m.samples),
              100.0 * m.accuracy(),
              static_cast<unsigned long long>(m.correct_room),
              static_cast<unsigned long long>(m.agree_absent),
              static_cast<unsigned long long>(m.wrong_room),
              static_cast<unsigned long long>(m.false_absent),
              static_cast<unsigned long long>(m.false_present));

  const auto& db = sim.server().db().stats();
  const auto& srv = sim.server().stats();
  std::printf("\n--- server ---\n");
  std::printf("  logins ok/failed: %llu/%llu\n",
              static_cast<unsigned long long>(srv.logins_ok),
              static_cast<unsigned long long>(srv.logins_failed));
  std::printf("  presence updates applied/redundant/duplicate: "
              "%llu/%llu/%llu\n",
              static_cast<unsigned long long>(db.presence_updates),
              static_cast<unsigned long long>(db.redundant_updates),
              static_cast<unsigned long long>(srv.presence_duplicates));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scenario-file> [history.csv]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 1;
  }

  core::ScenarioError err;
  std::optional<core::ScenarioSpec> spec;
  if (std::strcmp(argv[1], "--demo") == 0) {
    std::printf("running the built-in demo scenario:\n%s\n", kDemoScenario);
    spec = core::parse_scenario(std::string(kDemoScenario), &err);
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    spec = core::parse_scenario(in, &err);
  }
  if (!spec) {
    std::fprintf(stderr, "scenario error (line %d): %s\n", err.line,
                 err.message.c_str());
    return 1;
  }

  auto sim = core::run_scenario(*spec);
  report(*sim, *spec);

  if (argc >= 3 && std::strcmp(argv[1], "--demo") != 0) {
    std::ofstream csv(argv[2]);
    if (!csv) {
      std::fprintf(stderr, "cannot write %s\n", argv[2]);
      return 1;
    }
    sim->write_history_csv(csv);
    std::printf("\nhistory written to %s\n", argv[2]);
  }
  return 0;
}
